package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"frugal/internal/obs"
	"frugal/internal/store"
)

// Handler returns the engine's HTTP mux. The API is versioned under /v1;
// the unversioned routes are aliases kept for pre-v1 clients:
//
//	GET  /v1/lookup?key=K[&level=L]     one row with consistency metadata
//	GET  /v1/topk?q=0.1,0.2,...&k=N[&level=L][&index=flat|ivf][&nprobe=P]
//	POST /v1/topk {"query":[...],"k":N,"level":"L","index":"ivf","nprobe":P}
//	GET  /healthz                       shape + liveness + index state
//	GET  /debug/vars                    read-path metrics (obs.MetricsHandler)
//
// level defaults to the engine's Options.Default; index defaults to the
// engine's configured strategy. Every error answers with the same JSON
// envelope {"error","code","retry_after_ms"}, so clients can distinguish
// machine-actionable rejections by code:
//
//	bad_request        (400) malformed parameters — do not retry
//	shed               (429) admission control refused — back off retry_after_ms
//	deadline           (503) the request outlived its deadline — retry
//	too_stale          (503) bounded read refused under RejectStale — retry
//	                   after the flusher pool catches up
//	shard_unavailable  (503) a shard RPC failed (node down, connection
//	                   lost) — retry once the shard recovers
//	replica_lag        (503) a follower replica could not satisfy the
//	                   level after catching its log up — retry, lower the
//	                   level, or route to the primary
//
// The 429/503 responses also carry the matching Retry-After header.
//
// The unversioned routes are deprecated: they answer with a
// `Deprecation: true` and `Sunset` header, log one warning on first use,
// and will be removed after the sunset date. Migrate to /v1/*.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/lookup", e.handleLookup)
	mux.HandleFunc("/lookup", deprecatedRoute("/lookup", "/v1/lookup", e.handleLookup))
	mux.HandleFunc("/v1/topk", e.handleTopK)
	mux.HandleFunc("/topk", deprecatedRoute("/topk", "/v1/topk", e.handleTopK))
	mux.HandleFunc("/healthz", e.handleHealthz)
	mux.Handle("/debug/vars", obs.MetricsHandler("frugal_serve", func() any { return e.Metrics() }))
	return mux
}

// legacySunset is the advertised removal date of the unversioned routes
// (RFC 8594 Sunset header, HTTP-date form).
const legacySunset = "Sun, 01 Nov 2026 00:00:00 GMT"

// legacyRouteWarn collapses the startup warning to one line per route per
// process, however many engines are handling traffic.
var legacyRouteWarn sync.Map // route string → *sync.Once

// deprecatedRoute wraps a handler so the legacy unversioned alias keeps
// working while telling clients — by header on every response, by log
// once per process — to move to the /v1 route.
func deprecatedRoute(oldPath, newPath string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", legacySunset)
		w.Header().Set("Link", "<"+newPath+">; rel=\"successor-version\"")
		once, _ := legacyRouteWarn.LoadOrStore(oldPath, &sync.Once{})
		once.(*sync.Once).Do(func() {
			log.Printf("serve: deprecated route %s hit — migrate to %s (sunset %s)", oldPath, newPath, legacySunset)
		})
		h(w, r)
	}
}

type lookupResponse struct {
	Key    uint64    `json:"key"`
	Level  string    `json:"level"`
	Values []float32 `json:"values"`
	RowMeta
}

type topkRequest struct {
	Query  []float32 `json:"query"`
	K      int       `json:"k"`
	Level  string    `json:"level,omitempty"`
	Index  string    `json:"index,omitempty"`
	NProbe int       `json:"nprobe,omitempty"`
}

type topkResponse struct {
	K       int         `json:"k"`
	Level   string      `json:"level"`
	Index   string      `json:"index"`
	Results []Candidate `json:"results"`
}

// errorResponse is the one JSON error envelope every handler answers
// with. Code makes 429/503/staleness rejections machine-distinguishable;
// RetryAfterMS mirrors the Retry-After header (0: not retryable on a
// timer).
type errorResponse struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// The machine-readable error codes of the v1 envelope.
const (
	codeBadRequest       = "bad_request"
	codeShed             = "shed"
	codeDeadline         = "deadline"
	codeTooStale         = "too_stale"
	codeShardUnavailable = "shard_unavailable"
	codeReplicaLag       = "replica_lag"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	resp := errorResponse{Error: err.Error(), Code: codeBadRequest}
	var stale *ErrTooStale
	var shed *ErrShed
	var shardDown *store.ShardUnavailableError
	var replica *ErrReplica
	switch {
	case errors.As(err, &replica):
		// Retryable: the follower will catch up (or be promoted); clients
		// can also lower the level or route to the primary.
		status = http.StatusServiceUnavailable
		resp.Code = codeReplicaLag
		resp.RetryAfterMS = retryAfterMS(time.Second)
	case errors.As(err, &shed):
		// Overload: the client must back off, not retry immediately.
		status = http.StatusTooManyRequests
		resp.Code = codeShed
		resp.RetryAfterMS = retryAfterMS(shed.RetryAfter)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
		resp.Code = codeDeadline
		resp.RetryAfterMS = retryAfterMS(time.Second)
	case errors.As(err, &stale):
		status = http.StatusServiceUnavailable // retryable: the flusher pool will catch up
		resp.Code = codeTooStale
		resp.RetryAfterMS = retryAfterMS(time.Second)
	case errors.As(err, &shardDown):
		status = http.StatusServiceUnavailable // retryable: the shard may come back
		resp.Code = codeShardUnavailable
		resp.RetryAfterMS = retryAfterMS(time.Second)
	}
	if resp.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(resp.RetryAfterMS))
	}
	writeJSON(w, status, resp)
}

// retryAfterMS renders d in whole milliseconds, rounded up, at least 1.
func retryAfterMS(d time.Duration) int64 {
	ms := int64((d + time.Millisecond - 1) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// retryAfterSeconds renders a millisecond count for a Retry-After
// header: whole seconds, rounded up, at least 1 (the header has no
// sub-second form).
func retryAfterSeconds(ms int64) string {
	secs := (ms + 999) / 1000
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// requestCtx attaches the engine's per-request deadline to r's context.
func (e *Engine) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if e.opt.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), e.opt.RequestTimeout)
}

// level resolves the optional ?level= / "level" parameter.
func (e *Engine) level(s string) (Level, error) {
	if s == "" {
		return e.opt.Default, nil
	}
	return ParseLevel(s)
}

func (e *Engine) handleLookup(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseUint(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		writeError(w, fmt.Errorf("serve: bad key parameter: %w", err))
		return
	}
	lvl, err := e.level(r.URL.Query().Get("level"))
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := e.requestCtx(r)
	defer cancel()
	dst := make([]float32, e.Dim())
	resp, err := e.Query(ctx, Request{Key: key, Dst: dst, Level: lvl})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, lookupResponse{
		Key: key, Level: resp.Level.String(), Values: resp.Values, RowMeta: resp.Meta,
	})
}

func (e *Engine) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if r.Method == http.MethodPost {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("serve: bad topk body: %w", err))
			return
		}
	} else {
		q := r.URL.Query()
		for _, f := range strings.Split(q.Get("q"), ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
			if err != nil {
				writeError(w, fmt.Errorf("serve: bad q parameter: %w", err))
				return
			}
			req.Query = append(req.Query, float32(v))
		}
		k, err := strconv.Atoi(q.Get("k"))
		if err != nil {
			writeError(w, fmt.Errorf("serve: bad k parameter: %w", err))
			return
		}
		req.K = k
		req.Level = q.Get("level")
		req.Index = q.Get("index")
		if np := q.Get("nprobe"); np != "" {
			n, err := strconv.Atoi(np)
			if err != nil {
				writeError(w, fmt.Errorf("serve: bad nprobe parameter: %w", err))
				return
			}
			req.NProbe = n
		}
	}
	lvl, err := e.level(req.Level)
	if err != nil {
		writeError(w, err)
		return
	}
	kind, err := ParseIndexKind(req.Index)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := e.requestCtx(r)
	defer cancel()
	resp, err := e.Query(ctx, Request{
		Vector: req.Query, K: req.K, Level: lvl, Index: kind, NProbe: req.NProbe,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	// Report the effective k: the scan clamps req.K to the row count, and
	// the response must not claim more results than it carries.
	writeJSON(w, http.StatusOK, topkResponse{
		K: len(resp.Results), Level: resp.Level.String(), Index: resp.Index.String(),
		Results: resp.Results,
	})
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status": "ok",
		"rows":   e.Rows(),
		"dim":    e.Dim(),
		"live":   e.Live(),
		"level":  e.DefaultLevel().String(),
		"index":  e.IndexStats(),
		"shards": e.NumShards(),
	}
	if rs, ok := e.st.(interface{ ReplicaStats() FollowerStats }); ok {
		body["replica"] = rs.ReplicaStats()
	}
	writeJSON(w, http.StatusOK, body)
}
