package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"frugal/internal/obs"
)

// Handler returns the engine's HTTP mux:
//
//	GET  /lookup?key=K[&level=L]        one row with consistency metadata
//	GET  /topk?q=0.1,0.2,...&k=N[&level=L]
//	POST /topk    {"query":[...],"k":N,"level":"L"}
//	GET  /healthz                       shape + liveness
//	GET  /debug/vars                    read-path metrics (obs.MetricsHandler)
//
// level defaults to the engine's Options.Default. Bounded reads refused
// under RejectStale answer 503 with a JSON error body. Requests shed by
// admission control answer 429, requests that outlive Options.
// RequestTimeout answer 503 — both with a Retry-After header.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lookup", e.handleLookup)
	mux.HandleFunc("/topk", e.handleTopK)
	mux.HandleFunc("/healthz", e.handleHealthz)
	mux.Handle("/debug/vars", obs.MetricsHandler("frugal_serve", func() any { return e.Metrics() }))
	return mux
}

type lookupResponse struct {
	Key    uint64    `json:"key"`
	Level  string    `json:"level"`
	Values []float32 `json:"values"`
	RowMeta
}

type topkRequest struct {
	Query []float32 `json:"query"`
	K     int       `json:"k"`
	Level string    `json:"level,omitempty"`
}

type topkResponse struct {
	K       int         `json:"k"`
	Level   string      `json:"level"`
	Results []Candidate `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var stale *ErrTooStale
	var shed *ErrShed
	switch {
	case errors.As(err, &shed):
		// Overload: the client must back off, not retry immediately.
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfterSeconds(shed.RetryAfter))
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.As(err, &stale):
		status = http.StatusServiceUnavailable // retryable: the flusher pool will catch up
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// retryAfterSeconds renders d for a Retry-After header: whole seconds,
// rounded up, at least 1 (the header has no sub-second form).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// requestCtx attaches the engine's per-request deadline to r's context.
func (e *Engine) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if e.opt.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), e.opt.RequestTimeout)
}

// level resolves the optional ?level= / "level" parameter.
func (e *Engine) level(s string) (Level, error) {
	if s == "" {
		return e.opt.Default, nil
	}
	return ParseLevel(s)
}

func (e *Engine) handleLookup(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseUint(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		writeError(w, fmt.Errorf("serve: bad key parameter: %w", err))
		return
	}
	lvl, err := e.level(r.URL.Query().Get("level"))
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := e.requestCtx(r)
	defer cancel()
	resp := lookupResponse{Key: key, Level: lvl.String(), Values: make([]float32, e.Dim())}
	meta, err := e.LookupCtx(ctx, key, resp.Values, lvl)
	if err != nil {
		writeError(w, err)
		return
	}
	resp.RowMeta = meta
	writeJSON(w, http.StatusOK, resp)
}

func (e *Engine) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if r.Method == http.MethodPost {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("serve: bad topk body: %w", err))
			return
		}
	} else {
		q := r.URL.Query()
		for _, f := range strings.Split(q.Get("q"), ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
			if err != nil {
				writeError(w, fmt.Errorf("serve: bad q parameter: %w", err))
				return
			}
			req.Query = append(req.Query, float32(v))
		}
		k, err := strconv.Atoi(q.Get("k"))
		if err != nil {
			writeError(w, fmt.Errorf("serve: bad k parameter: %w", err))
			return
		}
		req.K = k
		req.Level = q.Get("level")
	}
	lvl, err := e.level(req.Level)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := e.requestCtx(r)
	defer cancel()
	res, err := e.TopKCtx(ctx, req.Query, req.K, lvl)
	if err != nil {
		writeError(w, err)
		return
	}
	// Report the effective k: TopK clamps req.K to the row count, and the
	// response must not claim more results than it carries.
	writeJSON(w, http.StatusOK, topkResponse{K: len(res), Level: lvl.String(), Results: res})
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"rows":   e.Rows(),
		"dim":    e.Dim(),
		"live":   e.Live(),
		"level":  e.DefaultLevel().String(),
	})
}
