package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"frugal/internal/obs"
)

// Handler returns the engine's HTTP mux:
//
//	GET  /lookup?key=K[&level=L]        one row with consistency metadata
//	GET  /topk?q=0.1,0.2,...&k=N[&level=L]
//	POST /topk    {"query":[...],"k":N,"level":"L"}
//	GET  /healthz                       shape + liveness
//	GET  /debug/vars                    read-path metrics (obs.MetricsHandler)
//
// level defaults to the engine's Options.Default. Bounded reads refused
// under RejectStale answer 503 with a JSON error body.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lookup", e.handleLookup)
	mux.HandleFunc("/topk", e.handleTopK)
	mux.HandleFunc("/healthz", e.handleHealthz)
	mux.Handle("/debug/vars", obs.MetricsHandler("frugal_serve", func() any { return e.Metrics() }))
	return mux
}

type lookupResponse struct {
	Key    uint64    `json:"key"`
	Level  string    `json:"level"`
	Values []float32 `json:"values"`
	RowMeta
}

type topkRequest struct {
	Query []float32 `json:"query"`
	K     int       `json:"k"`
	Level string    `json:"level,omitempty"`
}

type topkResponse struct {
	K       int         `json:"k"`
	Level   string      `json:"level"`
	Results []Candidate `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var stale *ErrTooStale
	if errors.As(err, &stale) {
		status = http.StatusServiceUnavailable // retryable: the flusher pool will catch up
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// level resolves the optional ?level= / "level" parameter.
func (e *Engine) level(s string) (Level, error) {
	if s == "" {
		return e.opt.Default, nil
	}
	return ParseLevel(s)
}

func (e *Engine) handleLookup(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseUint(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		writeError(w, fmt.Errorf("serve: bad key parameter: %w", err))
		return
	}
	lvl, err := e.level(r.URL.Query().Get("level"))
	if err != nil {
		writeError(w, err)
		return
	}
	resp := lookupResponse{Key: key, Level: lvl.String(), Values: make([]float32, e.Dim())}
	meta, err := e.Lookup(key, resp.Values, lvl)
	if err != nil {
		writeError(w, err)
		return
	}
	resp.RowMeta = meta
	writeJSON(w, http.StatusOK, resp)
}

func (e *Engine) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if r.Method == http.MethodPost {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("serve: bad topk body: %w", err))
			return
		}
	} else {
		q := r.URL.Query()
		for _, f := range strings.Split(q.Get("q"), ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
			if err != nil {
				writeError(w, fmt.Errorf("serve: bad q parameter: %w", err))
				return
			}
			req.Query = append(req.Query, float32(v))
		}
		k, err := strconv.Atoi(q.Get("k"))
		if err != nil {
			writeError(w, fmt.Errorf("serve: bad k parameter: %w", err))
			return
		}
		req.K = k
		req.Level = q.Get("level")
	}
	lvl, err := e.level(req.Level)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := e.TopK(req.Query, req.K, lvl)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, topkResponse{K: req.K, Level: lvl.String(), Results: res})
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"rows":   e.Rows(),
		"dim":    e.Dim(),
		"live":   e.Live(),
		"level":  e.DefaultLevel().String(),
	})
}
