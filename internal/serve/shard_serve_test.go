package serve_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frugal/internal/serve"
	"frugal/internal/shard"
	"frugal/internal/store"
)

// shardCluster builds `of` coordinated shard nodes, serves each over
// loopback TCP, and composes the dialed clients into one sharded store.
func shardCluster(t *testing.T, rows int64, dim, of int) *store.ShardedStore {
	t.Helper()
	shards := make([]store.Store, of)
	for i := 0; i < of; i++ {
		node, err := shard.NewNode(shard.NodeOptions{
			Rows: rows, Dim: dim, Shard: i, Of: of, Trainers: 1,
			Init: func(key uint64, row []float32) {
				for j := range row {
					row[j] = float32(key)*0.001 + float32(j)*0.01
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		srv, err := shard.NewServer("127.0.0.1:0", node)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		rs, err := shard.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = rs
	}
	st, err := store.NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestShardedServeWhileTraining is the sharded acceptance test: a serve
// engine over a 3-shard cluster answers Bounded(k) lookups concurrently
// with a full-sweep trainer driving the cluster, and every admitted read
// satisfies the version inequality
//
//	version ≥ G·(watermark + 1 − staleness)
//
// with G = 1 (full sweep: one update per key per step) and the watermark
// taken as the cross-shard minimum — the one-sided composition the
// sharded store's consistency story rests on. Run under -race; the point
// is the concurrent interleaving as much as the inequality.
func TestShardedServeWhileTraining(t *testing.T) {
	const (
		rows  = 90
		dim   = 8
		steps = 120
		bound = 2
	)
	st := shardCluster(t, rows, dim, 3)
	eng, err := serve.NewFromStore(st, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}

	trainDone := make(chan error, 1)
	go func() {
		trainDone <- store.RunTrainer(context.Background(), st, store.TrainerConfig{
			Steps: steps, LR: 0.1, Seed: 7,
		})
	}()

	var (
		wg       sync.WaitGroup
		admitted atomic.Int64
		stop     atomic.Bool
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]float32, dim)
			key := uint64(w * 13)
			for !stop.Load() {
				key = (key + 7) % rows
				resp, err := eng.Query(context.Background(), serve.Request{
					Key: key, Dst: dst, Level: serve.Bounded(bound),
				})
				if err != nil {
					t.Errorf("bounded lookup key %d: %v", key, err)
					return
				}
				meta := resp.Meta
				if meta.Staleness > bound {
					t.Errorf("key %d: staleness %d exceeds bound %d", key, meta.Staleness, bound)
					return
				}
				// PR-4, G = 1: every step ≤ watermark committed one update
				// to this key, and at most `staleness` of them may still be
				// in flight.
				if min := meta.Watermark + 1 - meta.Staleness; min > 0 && int64(meta.Version) < min {
					t.Errorf("key %d: version %d < watermark %d + 1 − staleness %d",
						key, meta.Version, meta.Watermark, meta.Staleness)
					return
				}
				admitted.Add(1)
			}
		}(w)
	}

	if err := <-trainDone; err != nil {
		t.Fatalf("trainer: %v", err)
	}
	// Let the readers observe the final state for a moment, then stop.
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := admitted.Load(); n < 100 {
		t.Fatalf("only %d lookups admitted during training — the test did not overlap", n)
	}

	// The composed watermark must reach the last committed step once every
	// shard has drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if wm := st.Watermark(); wm == steps-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("composed watermark %d never reached %d", st.Watermark(), steps-1)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And a fresh read now sees exactly `steps` versions on every key.
	dst := make([]float32, dim)
	for key := uint64(0); key < rows; key++ {
		resp, err := eng.Query(context.Background(), serve.Request{
			Key: key, Dst: dst, Level: serve.Fresh(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Meta.Version != steps {
			t.Fatalf("key %d: version %d after %d full-sweep steps", key, resp.Meta.Version, steps)
		}
	}
}
