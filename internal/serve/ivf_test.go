package serve_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"frugal/internal/data"
	"frugal/internal/runtime"
	"frugal/internal/serve"
)

// clusteredHost builds a deterministic mixture slab: `clusters` centers
// drawn uniform in [-1,1]^dim, each row its key-assigned center plus
// small noise. Unlike staticHost's degenerate ramp, this is data an IVF
// index can meaningfully cluster — and the fixed seed makes the golden
// recall figure reproducible.
func clusteredHost(t *testing.T, rows int64, dim, clusters int) (*runtime.Host, [][]float32) {
	t.Helper()
	h, err := runtime.NewHost(rows, dim)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	centers := make([][]float32, clusters)
	for c := range centers {
		centers[c] = make([]float32, dim)
		for d := range centers[c] {
			centers[c][d] = rng.Float32()*2 - 1
		}
	}
	h.Init(func(key uint64, row []float32) {
		center := centers[key%uint64(clusters)]
		for d := range row {
			row[d] = center[d] + (rng.Float32()*2-1)*0.1
		}
	})
	return h, centers
}

// recallAt returns |got ∩ want| / |want|.
func recallAt(got, want []serve.Candidate) float64 {
	keys := make(map[uint64]bool, len(want))
	for _, c := range want {
		keys[c.Key] = true
	}
	hit := 0
	for _, c := range got {
		if keys[c.Key] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// TestIVFRecallGolden is the recall@16 golden test: on a fixed-seed
// clusterable slab the IVF index must agree with the exhaustive scan on
// at least 95% of the top 16, averaged over a fixed query set.
func TestIVFRecallGolden(t *testing.T) {
	const (
		rows, dim, clusters = 8192, 32, 64
		k, queries          = 16, 32
	)
	host, centers := clusteredHost(t, rows, dim, clusters)
	flat, err := serve.NewStatic(host, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ivf, err := serve.NewStatic(host, serve.Options{
		Index: serve.IndexIVF, Centroids: clusters, NProbe: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ivf.Index() != serve.IndexIVF || flat.Index() != serve.IndexFlat {
		t.Fatalf("engine index kinds: ivf=%v flat=%v", ivf.Index(), flat.Index())
	}

	rng := rand.New(rand.NewSource(7))
	query := make([]float32, dim)
	var recall float64
	ctx := context.Background()
	for q := 0; q < queries; q++ {
		center := centers[rng.Intn(clusters)]
		for d := range query {
			query[d] = center[d] + (rng.Float32()*2-1)*0.2
		}
		truth, err := flat.Query(ctx, serve.Request{Vector: query, K: k})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ivf.Query(ctx, serve.Request{Vector: query, K: k})
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != serve.IndexIVF || truth.Index != serve.IndexFlat {
			t.Fatalf("effective kinds: got %v, truth %v", got.Index, truth.Index)
		}
		recall += recallAt(got.Results, truth.Results)

		// The flat hint on the IVF engine is the exact fallback: result
		// sets must match the flat engine key for key, score for score.
		fb, err := ivf.Query(ctx, serve.Request{Vector: query, K: k, Index: serve.IndexFlat})
		if err != nil {
			t.Fatal(err)
		}
		for i := range truth.Results {
			if fb.Results[i] != truth.Results[i] {
				t.Fatalf("query %d: flat fallback diverged at rank %d: %+v vs %+v",
					q, i, fb.Results[i], truth.Results[i])
			}
		}
	}
	recall /= queries
	t.Logf("recall@%d over %d queries: %.4f", k, queries, recall)
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.4f, want ≥ 0.95", k, recall)
	}
}

// TestQueryRequestValidation pins the unified-entrypoint error contract.
func TestQueryRequestValidation(t *testing.T) {
	h := staticHost(t, 64, 8)
	eng, err := serve.NewStatic(h, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	query := make([]float32, 8)
	for name, req := range map[string]serve.Request{
		"K-without-vector":      {Key: 1, K: 5},
		"nprobe-without-vector": {Key: 1, NProbe: 2},
		"index-without-vector":  {Key: 1, Index: serve.IndexFlat},
		"ivf-not-built":         {Vector: query, K: 5, Index: serve.IndexIVF},
		"nprobe-on-flat":        {Vector: query, K: 5, NProbe: 2},
		"negative-nprobe":       {Vector: query, K: 5, NProbe: -1},
		"bad-index":             {Vector: query, K: 5, Index: serve.IndexKind(9)},
		"bad-level":             {Key: 1, Level: serve.Level{Kind: serve.Kind(9)}},
	} {
		if _, err := eng.Query(ctx, req); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Lookup without Dst allocates; with Dst it aliases.
	resp, err := eng.Query(ctx, serve.Request{Key: 9})
	if err != nil || len(resp.Values) != 8 || resp.Values[0] != 9 {
		t.Fatalf("dst-less lookup: %v %v", resp.Values, err)
	}
	dst := make([]float32, 8)
	resp, err = eng.Query(ctx, serve.Request{Key: 3, Dst: dst})
	if err != nil || &resp.Values[0] != &dst[0] || dst[0] != 3 {
		t.Fatalf("dst lookup did not alias: %v %v", resp.Values, err)
	}
	// UseDefault applies the engine default level.
	lvlEng, err := serve.NewStatic(h, serve.Options{Default: serve.Fresh()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = lvlEng.Query(ctx, serve.Request{Key: 1, Dst: dst, UseDefault: true})
	if err != nil || resp.Level != serve.Fresh() {
		t.Fatalf("UseDefault level = %v, %v", resp.Level, err)
	}
}

// TestServeWhileTrainIVFInvariant is the -race IVF staleness-invariant
// test: while EngineFrugal flushes rewrite indexed rows, concurrent
// queries through the IVF index must uphold
//
//   - per candidate, the read-staleness contract: bounded(k) metadata
//     never reports staleness > k, and the hot key's version covers
//     every update the (watermark, staleness) pair admits — candidate
//     row version ≥ G·(watermark+1−staleness), the gate requirement;
//   - per query, the *index* staleness contract: after a bounded(k)
//     query at watermark ≥ wm₀, no unrepaired flush recorded at
//     watermark ≤ wm₀−k remains queued — the scanned partitions are at
//     most k gate steps behind host memory.
//
// K equals the row count and NProbe equals Centroids, so every row —
// the hot key included — is a candidate of every query and the checks
// run on complete result sets.
func TestServeWhileTrainIVFInvariant(t *testing.T) {
	const (
		gpus    = 2
		rowsN   = 96
		steps   = 300
		hot     = uint64(4)
		readers = 4
		bound   = int64(2)
	)
	cfg := runtime.Config{
		Engine: runtime.EngineFrugal, NumGPUs: gpus, Rows: rowsN, Dim: 16,
		CacheRatio: 0.25, Seed: 11, CheckConsistency: true,
	}
	trace := &hotTrace{
		hot: hot, gpus: gpus, batch: 64, steps: steps,
		gen: data.NewScrambledZipf(11, rowsN, 0.9),
	}
	job, err := runtime.NewMicro(cfg, trace, steps)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(job.Host(), job.Controller(), serve.Options{
		Index: serve.IndexIVF, Centroids: 16, NProbe: 16, MaxTopK: rowsN,
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	levels := []serve.Level{serve.Stale(), serve.Bounded(bound), serve.Fresh()}
	ctx := context.Background()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			dst := make([]float32, cfg.Dim)
			query := make([]float32, cfg.Dim)
			query[0] = 1
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				lvl := levels[(r+i)%len(levels)]
				// wm0: a watermark observed before the query is issued.
				pre, err := eng.Query(ctx, serve.Request{Key: hot, Dst: dst})
				if err != nil {
					t.Errorf("reader %d: pre-lookup: %v", r, err)
					return
				}
				wm0 := pre.Meta.Watermark
				resp, err := eng.Query(ctx, serve.Request{Vector: query, K: rowsN, Level: lvl})
				if err != nil {
					t.Errorf("reader %d: query: %v", r, err)
					return
				}
				if resp.Index != serve.IndexIVF {
					t.Errorf("reader %d: served by %v, want ivf", r, resp.Index)
					return
				}
				hotSeen := false
				for _, c := range resp.Results {
					if lvl.Kind == serve.KindBounded && c.Meta.Staleness > bound {
						t.Errorf("reader %d: candidate %d staleness %d over bound %d",
							r, c.Key, c.Meta.Staleness, bound)
						return
					}
					if c.Key != hot {
						continue
					}
					hotSeen = true
					if floor := c.Meta.Watermark + 1 - c.Meta.Staleness; floor > 0 && c.Meta.Version < gpus*uint64(floor) {
						t.Errorf("reader %d: %v hot candidate version %d < %d·(wm %d + 1 − lag %d): staler than admitted",
							r, lvl, c.Meta.Version, gpus, c.Meta.Watermark, c.Meta.Staleness)
						return
					}
				}
				if !hotSeen {
					t.Errorf("reader %d: hot key missing from full-coverage result set", r)
					return
				}
				if lvl.Kind == serve.KindBounded {
					// The index invariant: the bounded query drained every
					// repair recorded at watermark ≤ wm−bound, and wm ≥ wm0,
					// so nothing at or below wm0−bound may remain.
					st := eng.IndexStats()
					if st.Pending > 0 && st.OldestPending <= wm0-bound {
						t.Errorf("reader %d: index %d steps behind: oldest unrepaired flush at wm %d, query watermark ≥ %d, bound %d",
							r, wm0-st.OldestPending, st.OldestPending, wm0, bound)
						return
					}
				}
			}
		}(r)
	}

	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	// Post-run: a fresh query drains the whole repair queue, and the hot
	// row's version shows every committed update.
	query := make([]float32, cfg.Dim)
	query[0] = 1
	resp, err := eng.Query(ctx, serve.Request{Vector: query, K: rowsN, Level: serve.Fresh()})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != rowsN {
		t.Fatalf("post-run result set %d, want %d", len(resp.Results), rowsN)
	}
	for _, c := range resp.Results {
		if c.Key == hot && c.Meta.Version != uint64(steps*gpus) {
			t.Fatalf("post-run hot version = %d, want %d", c.Meta.Version, steps*gpus)
		}
	}
	if st := eng.IndexStats(); st.Pending != 0 {
		t.Fatalf("fresh query left %d repairs pending", st.Pending)
	}
	if st := eng.IndexStats(); st.Repairs == 0 {
		t.Fatal("training rewrote indexed rows but no repairs ran")
	}
}
