package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"frugal/internal/serve"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	h := staticHost(t, 100, 4)
	eng, err := serve.NewStatic(h, serve.Options{Default: serve.Bounded(2)})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(eng.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHTTPLookup(t *testing.T) {
	srv := testServer(t)
	var got struct {
		Key    uint64    `json:"key"`
		Level  string    `json:"level"`
		Values []float32 `json:"values"`
	}
	resp := getJSON(t, srv.URL+"/lookup?key=42", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Key != 42 || got.Values[0] != 42 || got.Values[1] != 1 {
		t.Fatalf("lookup = %+v", got)
	}
	if got.Level != "bounded(2)" {
		t.Fatalf("default level = %q", got.Level)
	}
	resp = getJSON(t, srv.URL+"/lookup?key=42&level=fresh", &got)
	if resp.StatusCode != http.StatusOK || got.Level != "fresh" {
		t.Fatalf("explicit level: status %d, level %q", resp.StatusCode, got.Level)
	}
	for _, bad := range []string{"/lookup", "/lookup?key=abc", "/lookup?key=100", "/lookup?key=1&level=junk"} {
		if resp := getJSON(t, srv.URL+bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestHTTPTopK(t *testing.T) {
	srv := testServer(t)
	var got struct {
		Results []struct {
			Key   uint64  `json:"key"`
			Score float32 `json:"score"`
		} `json:"results"`
	}
	resp := getJSON(t, srv.URL+"/topk?q=1,0,0,0&k=3", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Results) != 3 || got.Results[0].Key != 99 || got.Results[0].Score != 99 {
		t.Fatalf("topk = %+v", got.Results)
	}

	body, _ := json.Marshal(map[string]any{
		"query": []float32{1, 0, 0, 0}, "k": 2, "level": "stale",
	})
	post, err := http.Post(srv.URL+"/topk", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	got.Results = nil
	if err := json.NewDecoder(post.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 2 || got.Results[0].Key != 99 {
		t.Fatalf("POST topk = %+v", got.Results)
	}

	for _, bad := range []string{"/topk?q=1,2&k=3", "/topk?q=1,0,0,0&k=0", "/topk?q=1,0,0,0&k=999", "/topk?q=a,b,c,d&k=1"} {
		if resp := getJSON(t, srv.URL+bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestHTTPTopKEffectiveK pins the response contract when the engine
// clamps k to the row count: the reported k must match the result count,
// not echo the client's request.
func TestHTTPTopKEffectiveK(t *testing.T) {
	srv := testServer(t) // 100 rows, MaxTopK default 128
	var got struct {
		K       int               `json:"k"`
		Results []json.RawMessage `json:"results"`
	}
	resp := getJSON(t, srv.URL+"/topk?q=1,0,0,0&k=128", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Results) != 100 {
		t.Fatalf("got %d results, want the full 100-row table", len(got.Results))
	}
	if got.K != 100 {
		t.Fatalf("reported k = %d, want the effective 100 (client asked for 128)", got.K)
	}
	// Unclamped requests report the k they deliver, unchanged.
	resp = getJSON(t, srv.URL+"/topk?q=1,0,0,0&k=7", &got)
	if resp.StatusCode != http.StatusOK || got.K != 7 || len(got.Results) != 7 {
		t.Fatalf("k=7: status %d, k %d, results %d", resp.StatusCode, got.K, len(got.Results))
	}
}

// TestHTTPV1Routes pins the versioned API: /v1/* is canonical and the
// legacy unversioned routes answer identically.
func TestHTTPV1Routes(t *testing.T) {
	srv := testServer(t)
	var v1, legacy struct {
		Key    uint64    `json:"key"`
		Values []float32 `json:"values"`
	}
	if resp := getJSON(t, srv.URL+"/v1/lookup?key=7", &v1); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/lookup status %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/lookup?key=7", &legacy); resp.StatusCode != http.StatusOK {
		t.Fatalf("/lookup status %d", resp.StatusCode)
	}
	if v1.Key != legacy.Key || v1.Values[0] != legacy.Values[0] {
		t.Fatalf("v1 and legacy lookup diverge: %+v vs %+v", v1, legacy)
	}
	var topk struct {
		Index   string            `json:"index"`
		Results []json.RawMessage `json:"results"`
	}
	if resp := getJSON(t, srv.URL+"/v1/topk?q=1,0,0,0&k=2", &topk); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/topk status %d", resp.StatusCode)
	}
	if topk.Index != "flat" || len(topk.Results) != 2 {
		t.Fatalf("/v1/topk = index %q, %d results", topk.Index, len(topk.Results))
	}
}

// TestHTTPErrorEnvelope pins the one JSON error shape and its
// machine-readable codes.
func TestHTTPErrorEnvelope(t *testing.T) {
	srv := testServer(t)
	var envelope struct {
		Error        string `json:"error"`
		Code         string `json:"code"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	resp, err := http.Get(srv.URL + "/v1/lookup?key=abc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Code != "bad_request" || envelope.Error == "" {
		t.Fatalf("envelope = %+v", envelope)
	}
	if envelope.RetryAfterMS != 0 {
		t.Fatalf("bad_request advertised retry_after_ms %d", envelope.RetryAfterMS)
	}
	// Unknown index kinds and malformed nprobe are 400s too.
	for _, bad := range []string{
		"/v1/topk?q=1,0,0,0&k=2&index=hnsw",
		"/v1/topk?q=1,0,0,0&k=2&nprobe=x",
		"/v1/topk?q=1,0,0,0&k=2&index=ivf", // engine has no IVF index
	} {
		if resp := getJSON(t, srv.URL+bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestHTTPTopKIndexParams exercises the index/nprobe parameters against
// an engine that carries an IVF index.
func TestHTTPTopKIndexParams(t *testing.T) {
	host, _ := clusteredHost(t, 512, 8, 8)
	eng, err := serve.NewStatic(host, serve.Options{
		Index: serve.IndexIVF, Centroids: 8, NProbe: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(eng.Handler())
	t.Cleanup(srv.Close)

	var got struct {
		Index   string `json:"index"`
		Results []struct {
			Key uint64 `json:"key"`
		} `json:"results"`
	}
	// Default: the engine's configured IVF strategy.
	if resp := getJSON(t, srv.URL+"/v1/topk?q=1,0,0,0,0,0,0,0&k=4", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Index != "ivf" || len(got.Results) != 4 {
		t.Fatalf("default index = %q, %d results", got.Index, len(got.Results))
	}
	// Explicit flat fallback on the same engine.
	if resp := getJSON(t, srv.URL+"/v1/topk?q=1,0,0,0,0,0,0,0&k=4&index=flat", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("flat status %d", resp.StatusCode)
	}
	if got.Index != "flat" {
		t.Fatalf("index override = %q, want flat", got.Index)
	}
	// POST body carries the same parameters.
	body, _ := json.Marshal(map[string]any{
		"query": []float32{1, 0, 0, 0, 0, 0, 0, 0}, "k": 4, "index": "ivf", "nprobe": 2,
	})
	post, err := http.Post(srv.URL+"/v1/topk", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	got.Index = ""
	if err := json.NewDecoder(post.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if post.StatusCode != http.StatusOK || got.Index != "ivf" {
		t.Fatalf("POST with nprobe: status %d, index %q", post.StatusCode, got.Index)
	}
	// Healthz reports the index state.
	var health struct {
		Index struct {
			Kind      string `json:"kind"`
			Centroids int    `json:"centroids"`
		} `json:"index"`
	}
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Index.Kind != "ivf" || health.Index.Centroids != 8 {
		t.Fatalf("healthz index = %+v", health.Index)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	srv := testServer(t)
	var health struct {
		Status string `json:"status"`
		Rows   int64  `json:"rows"`
		Dim    int    `json:"dim"`
		Live   bool   `json:"live"`
	}
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Rows != 100 || health.Dim != 4 || health.Live {
		t.Fatalf("healthz = %+v", health)
	}

	getJSON(t, srv.URL+"/lookup?key=1", nil) // bump a counter
	var vars map[string]struct {
		Lookups int64 `json:"lookups"`
	}
	if resp := getJSON(t, srv.URL+"/debug/vars", &vars); resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars status %d", resp.StatusCode)
	}
	if vars["frugal_serve"].Lookups == 0 {
		t.Fatalf("metrics missing lookups: %+v", vars)
	}
}
