package serve_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"frugal/internal/data"
	"frugal/internal/runtime"
	"frugal/internal/serve"
)

// lookupMeta and topK drive the unified Query entrypoint with the old
// helper signatures the tests were written against (the deprecated
// Lookup/TopK wrappers are gone from the engine).
func lookupMeta(e *serve.Engine, key uint64, dst []float32, lvl serve.Level) (serve.RowMeta, error) {
	resp, err := e.Query(context.Background(), serve.Request{Key: key, Dst: dst, Level: lvl})
	return resp.Meta, err
}

func topK(e *serve.Engine, query []float32, k int, lvl serve.Level) ([]serve.Candidate, error) {
	resp, err := e.Query(context.Background(), serve.Request{Vector: query, K: k, Level: lvl})
	return resp.Results, err
}

func TestParseLevel(t *testing.T) {
	good := map[string]serve.Level{
		"stale":      serve.Stale(),
		"fresh":      serve.Fresh(),
		"bounded":    serve.Bounded(0),
		"bounded(0)": serve.Bounded(0),
		"bounded(7)": serve.Bounded(7),
	}
	for in, want := range good {
		got, err := serve.ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
	for _, in := range []string{"", "eventual", "bounded(", "bounded(-1)", "bounded(x)", "bounded()"} {
		if _, err := serve.ParseLevel(in); err == nil {
			t.Fatalf("ParseLevel(%q) accepted", in)
		}
	}
	if s := serve.Bounded(3).String(); s != "bounded(3)" {
		t.Fatalf("String = %q", s)
	}
	if err := (serve.Level{Kind: serve.KindBounded, Bound: -2}).Validate(); err == nil {
		t.Fatal("negative bound validated")
	}
	if err := (serve.Level{Kind: serve.Kind(42)}).Validate(); err == nil {
		t.Fatal("unknown kind validated")
	}
}

// staticHost builds a quiescent slab with row[0] = key, row[1] = 1, so
// dot products against a unit query rank rows by key.
func staticHost(t *testing.T, rows int64, dim int) *runtime.Host {
	t.Helper()
	h, err := runtime.NewHost(rows, dim)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(key uint64, row []float32) {
		row[0] = float32(key)
		row[1] = 1
	})
	return h
}

func TestStaticLookup(t *testing.T) {
	h := staticHost(t, 64, 8)
	eng, err := serve.NewStatic(h, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 8)
	meta, err := lookupMeta(eng, 7, dst, serve.Fresh())
	if err != nil {
		t.Fatal(err)
	}
	if dst[0] != 7 || dst[1] != 1 {
		t.Fatalf("row 7 = %v", dst)
	}
	if meta.Watermark != -1 || meta.Staleness != 0 || meta.Refreshed {
		t.Fatalf("static meta = %+v", meta)
	}
	if _, err := lookupMeta(eng, 64, dst, serve.Stale()); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	if _, err := lookupMeta(eng, 0, dst[:3], serve.Stale()); err == nil {
		t.Fatal("short dst accepted")
	}
	if _, err := lookupMeta(eng, 0, dst, serve.Level{Kind: serve.Kind(9)}); err == nil {
		t.Fatal("bad level accepted")
	}
	if m := eng.Metrics(); m.Lookups != 1 {
		t.Fatalf("lookup count = %d", m.Lookups)
	}
}

func TestStaticTopK(t *testing.T) {
	const rows, dim = 1000, 8
	h := staticHost(t, rows, dim)
	eng, err := serve.NewStatic(h, serve.Options{MaxTopK: 16})
	if err != nil {
		t.Fatal(err)
	}
	query := make([]float32, dim)
	query[0] = 1 // score(key) = key: the top-K are the largest keys
	res, err := topK(eng, query, 5, serve.Stale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	for i, want := range []uint64{999, 998, 997, 996, 995} {
		if res[i].Key != want || res[i].Score != float32(want) {
			t.Fatalf("result %d = %+v, want key %d", i, res[i], want)
		}
	}
	// Ties rank by ascending key: a zero query scores every row 0.
	res, err = topK(eng, make([]float32, dim), 3, serve.Stale())
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{0, 1, 2} {
		if res[i].Key != want {
			t.Fatalf("tie order: result %d = key %d, want %d", i, res[i].Key, want)
		}
	}
	if _, err := topK(eng, query, 17, serve.Stale()); err == nil {
		t.Fatal("k over MaxTopK accepted")
	}
	if _, err := topK(eng, query, 0, serve.Stale()); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := topK(eng, query[:2], 3, serve.Stale()); err == nil {
		t.Fatal("short query accepted")
	}
	// k larger than the table: clamped, not an error.
	small := staticHost(t, 3, dim)
	se, err := serve.NewStatic(small, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err = topK(se, query, 10, serve.Fresh())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("clamped k: got %d results", len(res))
	}
}

func TestLookupAllocationFree(t *testing.T) {
	h := staticHost(t, 256, 16)
	eng, err := serve.NewStatic(h, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 16)
	for _, lvl := range []serve.Level{serve.Stale(), serve.Bounded(0), serve.Fresh()} {
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := lookupMeta(eng, 42, dst, lvl); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("Lookup(%v) allocates %.1f/op, want 0", lvl, allocs)
		}
	}
}

// hotTrace is a micro-workload key trace whose first `gpus` slots every
// step are the hot key — NewMicro shards keys round-robin, so every
// trainer commits exactly one update for the hot key at every step. The
// rest of the batch is Zipf tail traffic.
type hotTrace struct {
	hot   uint64
	gpus  int
	batch int
	steps int64
	done  int64
	gen   *data.Zipf
}

func (t *hotTrace) Next() ([]uint64, bool) {
	if t.done >= t.steps {
		return nil, false
	}
	t.done++
	keys := make([]uint64, t.batch)
	for i := 0; i < t.gpus; i++ {
		keys[i] = t.hot
	}
	for i := t.gpus; i < t.batch; i++ {
		keys[i] = t.gen.Next()
	}
	return keys, true
}

func (t *hotTrace) Steps() int64 { return t.steps }
func (t *hotTrace) Batch() int   { return t.batch }

// serveWhileTrain hammers the engine from several goroutines for the
// whole duration of a live training job and checks every read's
// consistency metadata. The heart of the test is the bounded-staleness
// invariant on the hot key: each of the G trainers commits exactly one
// update for it per step, so a read whose consistency decision reported
// (watermark, staleness) must observe
//
//	version ≥ G · (watermark + 1 − staleness)
//
// — fewer applied updates would mean the row is staler than the level
// admitted. For bounded(k), staleness ≤ k proves no read was served more
// than k gate steps stale.
func serveWhileTrain(t *testing.T, engine runtime.Engine) {
	const (
		gpus    = 2
		rowsN   = 2048
		steps   = 250
		hot     = uint64(4) // owner-sharded, cached, and updated every step
		readers = 4
	)
	cfg := runtime.Config{
		Engine: engine, NumGPUs: gpus, Rows: rowsN, Dim: 16,
		CacheRatio: 0.25, Seed: 11, CheckConsistency: true,
	}
	trace := &hotTrace{
		hot: hot, gpus: gpus, batch: 64, steps: steps,
		gen: data.NewScrambledZipf(11, rowsN, 0.9),
	}
	job, err := runtime.NewMicro(cfg, trace, steps)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(job.Host(), job.Controller(), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	levels := []serve.Level{serve.Stale(), serve.Bounded(0), serve.Bounded(2), serve.Fresh()}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			dst := make([]float32, cfg.Dim)
			query := make([]float32, cfg.Dim)
			query[0] = 1
			var lastVersion uint64
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				lvl := levels[(r+i)%len(levels)]
				meta, err := lookupMeta(eng, hot, dst, lvl)
				if err != nil {
					t.Errorf("reader %d: lookup: %v", r, err)
					return
				}
				if lvl.Kind == serve.KindBounded && meta.Staleness > lvl.Bound {
					t.Errorf("reader %d: %v read staleness %d over bound", r, lvl, meta.Staleness)
					return
				}
				if floor := meta.Watermark + 1 - meta.Staleness; floor > 0 && meta.Version < gpus*uint64(floor) {
					t.Errorf("reader %d: %v read version %d < %d·(wm %d + 1 − lag %d): row staler than admitted",
						r, lvl, meta.Version, gpus, meta.Watermark, meta.Staleness)
					return
				}
				if meta.Version < lastVersion {
					t.Errorf("reader %d: version went backwards %d → %d", r, lastVersion, meta.Version)
					return
				}
				lastVersion = meta.Version
				if i%16 == 0 {
					if _, err := topK(eng, query, 8, lvl); err != nil {
						t.Errorf("reader %d: topk: %v", r, err)
						return
					}
				}
			}
		}(r)
	}

	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	// After the run the epilogue has drained every update: a fresh read
	// must see all steps·gpus of them.
	dst := make([]float32, cfg.Dim)
	meta, err := lookupMeta(eng, hot, dst, serve.Fresh())
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(steps * gpus); meta.Version != want {
		t.Fatalf("post-run version = %d, want %d", meta.Version, want)
	}
	m := eng.Metrics()
	if m.Lookups == 0 {
		t.Fatal("no lookups recorded")
	}
	if job.Controller() != nil && meta.Watermark != steps-1 {
		t.Fatalf("post-run watermark = %d, want %d", meta.Watermark, int64(steps-1))
	}
}

func TestServeWhileTrainFrugal(t *testing.T)     { serveWhileTrain(t, runtime.EngineFrugal) }
func TestServeWhileTrainFrugalSync(t *testing.T) { serveWhileTrain(t, runtime.EngineFrugalSync) }
func TestServeWhileTrainDirect(t *testing.T)     { serveWhileTrain(t, runtime.EngineDirect) }

// TestRejectStale drives bounded(0) lookups in reject mode against the
// frugal engine: rejected reads must carry *ErrTooStale, admitted reads
// must meet the bound, and at least the post-run read must succeed.
func TestRejectStale(t *testing.T) {
	const gpus, steps = 2, 150
	cfg := runtime.Config{
		Engine: runtime.EngineFrugal, NumGPUs: gpus, Rows: 1024, Dim: 8,
		CacheRatio: 0.25, Seed: 5, CheckConsistency: true,
	}
	trace := &hotTrace{hot: 4, gpus: gpus, batch: 32, steps: steps,
		gen: data.NewScrambledZipf(5, 1024, 0.9)}
	job, err := runtime.NewMicro(cfg, trace, steps)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(job.Host(), job.Controller(), serve.Options{RejectStale: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		dst := make([]float32, cfg.Dim)
		for {
			select {
			case <-done:
				return
			default:
			}
			meta, err := lookupMeta(eng, 4, dst, serve.Bounded(0))
			if err != nil {
				stale, ok := err.(*serve.ErrTooStale)
				if !ok {
					t.Errorf("lookup: %v", err)
					return
				}
				if stale.Staleness <= stale.Bound {
					t.Errorf("rejected within bound: %+v", stale)
					return
				}
				continue
			}
			if meta.Staleness > 0 || meta.Refreshed {
				t.Errorf("admitted read not within bound: %+v", meta)
				return
			}
		}
	}()
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	dst := make([]float32, cfg.Dim)
	if _, err := lookupMeta(eng, 4, dst, serve.Bounded(0)); err != nil {
		t.Fatalf("post-run bounded(0) rejected: %v", err)
	}
}

// TestCheckpointRoundTrip serves a slab through Save/LoadHost and checks
// the served bytes match the original.
func TestCheckpointRoundTrip(t *testing.T) {
	h := staticHost(t, 32, 4)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := runtime.LoadHost(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewStatic(loaded, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 4)
	if _, err := lookupMeta(eng, 9, dst, serve.Stale()); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 9 || dst[1] != 1 {
		t.Fatalf("served row = %v", dst)
	}
}
