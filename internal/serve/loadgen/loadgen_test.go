package loadgen_test

import (
	"testing"
	"time"

	"frugal/internal/runtime"
	"frugal/internal/serve"
	"frugal/internal/serve/loadgen"
)

func TestRunSmoke(t *testing.T) {
	h, err := runtime.NewHost(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(key uint64, row []float32) { row[0] = float32(key) })
	eng, err := serve.NewStatic(h, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Run(eng, loadgen.Options{
		Workers:  2,
		Duration: 100 * time.Millisecond,
		K:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Lookups == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("static serving errored: %+v", rep)
	}
	if rep.QPS <= 0 || rep.Elapsed <= 0 {
		t.Fatalf("bad rate accounting: %+v", rep)
	}
	if rep.Workers != 2 {
		t.Fatalf("workers = %d", rep.Workers)
	}
	if rep.Ops != rep.Lookups+rep.TopKs {
		t.Fatalf("op counts inconsistent: %+v", rep)
	}
}

func TestRunValidation(t *testing.T) {
	h, err := runtime.NewHost(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewStatic(h, serve.Options{MaxTopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	bad := []loadgen.Options{
		{Workers: -1},
		{Zipf: 1.5},
		{TopKFraction: 2},
		{K: -5},
	}
	for i, opt := range bad {
		opt.Duration = 10 * time.Millisecond
		if _, err := loadgen.Run(eng, opt); err == nil {
			t.Errorf("case %d accepted: %+v", i, opt)
		}
	}
}
