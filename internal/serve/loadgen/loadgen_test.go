package loadgen_test

import (
	"testing"
	"time"

	"frugal/internal/runtime"
	"frugal/internal/serve"
	"frugal/internal/serve/loadgen"
)

func TestRunSmoke(t *testing.T) {
	h, err := runtime.NewHost(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(key uint64, row []float32) { row[0] = float32(key) })
	eng, err := serve.NewStatic(h, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Run(eng, loadgen.Options{
		Workers:  2,
		Duration: 100 * time.Millisecond,
		K:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Lookups == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("static serving errored: %+v", rep)
	}
	if rep.QPS <= 0 || rep.Elapsed <= 0 {
		t.Fatalf("bad rate accounting: %+v", rep)
	}
	if rep.Workers != 2 {
		t.Fatalf("workers = %d", rep.Workers)
	}
	if rep.Ops != rep.Lookups+rep.TopKs {
		t.Fatalf("op counts inconsistent: %+v", rep)
	}
}

// TestOpenLoopOverloadSheds measures the engine's closed-loop capacity,
// then drives an open-loop arrival process at ≥2× that rate against an
// admission-bounded engine. The engine must shed (not queue unboundedly),
// admitted-request latency must stay bounded, and the arrival accounting
// must balance: every offered query is dropped at the client queue or
// completes with exactly one outcome.
func TestOpenLoopOverloadSheds(t *testing.T) {
	h, err := runtime.NewHost(8192, 16)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(key uint64, row []float32) { row[0] = float32(key) })
	eng, err := serve.NewStatic(h, serve.Options{
		MaxInflight: 8, TopKWeight: 8,
		AdmitWait: 200 * time.Microsecond, MaxWaiters: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := loadgen.Options{
		Workers: 8, Zipf: 0.9, TopKFraction: 0.5, K: 8, Seed: 3,
	}

	capRun := base
	capRun.Duration = 300 * time.Millisecond
	capRep, err := loadgen.Run(eng, capRun)
	if err != nil {
		t.Fatal(err)
	}
	if capRep.Mode != "closed" || capRep.Ops == 0 {
		t.Fatalf("capacity run: %+v", capRep)
	}

	over := base
	over.Duration = 600 * time.Millisecond
	over.Workers = 16
	over.ArrivalRate = 2 * capRep.QPS
	over.MaxOutstanding = 64
	rep, err := loadgen.Run(eng, over)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Fatalf("mode = %q, want open", rep.Mode)
	}
	if rep.Errors != 0 || rep.Aborted {
		t.Fatalf("hard errors under overload: %+v", rep)
	}
	if rep.Offered == 0 {
		t.Fatal("open loop offered nothing")
	}
	if rep.Shed == 0 {
		t.Fatalf("no queries shed at 2× capacity (offered %d, ops %d): admission control idle",
			rep.Offered, rep.Ops)
	}
	// Conservation: offered = dropped at the client + one outcome each.
	if got := rep.Dropped + rep.Ops + rep.Shed + rep.Rejected + rep.Errors; got != rep.Offered {
		t.Fatalf("arrival accounting leaks: offered %d ≠ dropped %d + ops %d + shed %d + rejected %d + errors %d",
			rep.Offered, rep.Dropped, rep.Ops, rep.Shed, rep.Rejected, rep.Errors)
	}
	// Bounded latency for admitted work: the client queue is capped and
	// the admission wait is bounded, so p99 cannot grow with the overload.
	// The bound is deliberately loose — it catches unbounded queueing, not
	// scheduler noise.
	for _, lat := range []time.Duration{rep.LookupLatency.Quantile(0.99), rep.TopKLatency.Quantile(0.99)} {
		if lat > 2*time.Second {
			t.Fatalf("admitted p99 = %v: latency unbounded under overload (%+v)", lat, rep)
		}
	}
}

// TestAbortOnPersistentHardErrors aims the generator at an engine that
// fails every query (K over the engine's MaxTopK) and checks the run
// aborts fast instead of hot-spinning through the full Duration — and
// says why.
func TestAbortOnPersistentHardErrors(t *testing.T) {
	h, err := runtime.NewHost(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewStatic(h, serve.Options{MaxTopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := loadgen.Run(eng, loadgen.Options{
		Workers: 4, Duration: 30 * time.Second, // must never run this long
		TopKFraction: 1, K: 16, // every query: k over MaxTopK, a hard error
		HardErrorLimit: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("misconfigured run burned %v before aborting", took)
	}
	if !rep.Aborted {
		t.Fatalf("run did not abort: %+v", rep)
	}
	if rep.FirstError == "" {
		t.Fatal("abort without a surfaced first error")
	}
	if rep.Errors < 32 {
		t.Fatalf("errors = %d, want ≥ HardErrorLimit", rep.Errors)
	}
	if rep.Ops != 0 {
		t.Fatalf("ops = %d on an all-failing engine", rep.Ops)
	}
}

// TestOpenLoopAccountingQuiet drives a light open-loop run well under
// capacity: nothing dropped, nothing shed, latency recorded from arrival.
func TestOpenLoopAccountingQuiet(t *testing.T) {
	h, err := runtime.NewHost(256, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(key uint64, row []float32) { row[0] = float32(key) })
	eng, err := serve.NewStatic(h, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Run(eng, loadgen.Options{
		Workers: 4, Duration: 300 * time.Millisecond, ArrivalRate: 500, K: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Fatalf("mode = %q", rep.Mode)
	}
	if rep.Offered == 0 || rep.Ops == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Dropped != 0 || rep.Shed != 0 || rep.Errors != 0 || rep.Aborted {
		t.Fatalf("losses under light load: %+v", rep)
	}
	if rep.Ops != rep.Offered {
		t.Fatalf("ops %d ≠ offered %d on an idle engine", rep.Ops, rep.Offered)
	}
	bad := []loadgen.Options{
		{ArrivalRate: -1},
		{ArrivalRate: 100, MaxOutstanding: -1},
		{HardErrorLimit: -1},
	}
	for i, opt := range bad {
		opt.Duration = 10 * time.Millisecond
		if _, err := loadgen.Run(eng, opt); err == nil {
			t.Errorf("case %d accepted: %+v", i, opt)
		}
	}
}

func TestRunValidation(t *testing.T) {
	h, err := runtime.NewHost(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewStatic(h, serve.Options{MaxTopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	bad := []loadgen.Options{
		{Workers: -1},
		{Zipf: 1.5},
		{TopKFraction: 2},
		{K: -5},
	}
	for i, opt := range bad {
		opt.Duration = 10 * time.Millisecond
		if _, err := loadgen.Run(eng, opt); err == nil {
			t.Errorf("case %d accepted: %+v", i, opt)
		}
	}
}
