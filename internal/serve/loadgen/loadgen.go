// Package loadgen is a load generator for the serving engine, with two
// arrival disciplines:
//
//   - Closed-loop (the default): N workers issue lookup and top-K queries
//     back-to-back, each waiting for its previous query before issuing the
//     next. The measured latency is service latency, and the offered load
//     self-limits at the engine's capacity — a closed loop can never drive
//     the server past saturation.
//   - Open-loop (ArrivalRate > 0): a dispatcher injects queries at a fixed
//     rate regardless of how the engine is coping, the discipline real
//     user traffic follows. This is the only way to measure overload
//     behaviour — shed counts, queue growth, admitted-request latency
//     under pressure — because the arrival rate does not slow down when
//     the server does.
//
// Keys are drawn from a scrambled-Zipf distribution (the access skew
// every embedding workload in the paper exhibits); latencies are recorded
// through the same obs histograms the engine itself uses.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"frugal/internal/data"
	"frugal/internal/obs"
	"frugal/internal/serve"
)

// Options configures a load run.
type Options struct {
	// Workers is the executing concurrency (default 4). Closed-loop: each
	// worker is one synchronous client. Open-loop: the worker pool drains
	// the arrival queue.
	Workers int
	// Duration is how long to run (default 2s).
	Duration time.Duration
	// Zipf is the key-skew exponent θ of the scrambled-Zipf draw
	// (default 0.9, the evaluation default; 0 < θ < 1).
	Zipf float64
	// TopKFraction is the fraction of queries that are top-K similarity
	// searches instead of lookups (default 0.05).
	TopKFraction float64
	// K is the top-K result size (default 10).
	K int
	// Level is the consistency level of every query (default: the
	// engine's default).
	Level serve.Level
	// UseDefault keeps the engine's default level even if Level is zero.
	// (The zero Level is a valid level — Stale — so Options distinguishes
	// "unset" explicitly.)
	UseDefault bool
	// Index selects the top-K scan strategy (IndexAuto: whatever the
	// engine was built with).
	Index serve.IndexKind
	// NProbe overrides the IVF probe width for top-K queries (0: the
	// engine's configured width; only valid with Index: IndexIVF).
	NProbe int
	// Seed makes the key sequence reproducible (default 1).
	Seed int64

	// ArrivalRate switches to open-loop mode: queries arrive at this fixed
	// rate (per second) no matter how the engine is doing. 0 keeps the
	// closed loop.
	ArrivalRate float64
	// MaxOutstanding caps the open-loop arrival queue (default 4096).
	// Arrivals past it are counted as Dropped instead of queueing without
	// bound — the generator must not itself become an unbounded queue in
	// front of the engine.
	MaxOutstanding int
	// HardErrorLimit aborts the run after this many consecutive hard
	// errors (default 64). Staleness rejections and admission sheds are
	// expected outcomes and do not count; anything else signals a
	// misconfigured engine, and burning the whole Duration in a tight
	// error loop would hide it behind a "successful" report.
	HardErrorLimit int
}

func (o *Options) normalize() error {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Workers < 0 {
		return fmt.Errorf("loadgen: Workers must be ≥ 1, got %d", o.Workers)
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.Duration < 0 {
		return fmt.Errorf("loadgen: Duration must be positive, got %v", o.Duration)
	}
	if o.Zipf == 0 {
		o.Zipf = 0.9
	}
	if o.Zipf <= 0 || o.Zipf >= 1 {
		return fmt.Errorf("loadgen: Zipf θ must be in (0, 1), got %v", o.Zipf)
	}
	if o.TopKFraction == 0 {
		o.TopKFraction = 0.05
	}
	if o.TopKFraction < 0 || o.TopKFraction > 1 {
		return fmt.Errorf("loadgen: TopKFraction must be in [0, 1], got %v", o.TopKFraction)
	}
	if o.K == 0 {
		o.K = 10
	}
	if o.K < 1 {
		return fmt.Errorf("loadgen: K must be ≥ 1, got %d", o.K)
	}
	if err := o.Level.Validate(); err != nil {
		return err
	}
	if err := o.Index.Validate(); err != nil {
		return err
	}
	if o.NProbe < 0 {
		return fmt.Errorf("loadgen: NProbe must be ≥ 0, got %d", o.NProbe)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ArrivalRate < 0 {
		return fmt.Errorf("loadgen: ArrivalRate must be ≥ 0, got %v", o.ArrivalRate)
	}
	if o.MaxOutstanding == 0 {
		o.MaxOutstanding = 4096
	}
	if o.MaxOutstanding < 1 {
		return fmt.Errorf("loadgen: MaxOutstanding must be ≥ 1, got %d", o.MaxOutstanding)
	}
	if o.HardErrorLimit == 0 {
		o.HardErrorLimit = 64
	}
	if o.HardErrorLimit < 1 {
		return fmt.Errorf("loadgen: HardErrorLimit must be ≥ 1, got %d", o.HardErrorLimit)
	}
	return nil
}

// Report summarises one load run.
type Report struct {
	Mode     string        `json:"mode"` // "closed" or "open"
	Workers  int           `json:"workers"`
	Level    string        `json:"level"`
	Elapsed  time.Duration `json:"elapsedNanos"`
	Ops      int64         `json:"ops"`
	Lookups  int64         `json:"lookups"`
	TopKs    int64         `json:"topks"`
	Rejected int64         `json:"rejected"` // bounded reads refused (RejectStale engines)
	Shed     int64         `json:"shed"`     // refused by admission control (overload, expected)
	Errors   int64         `json:"errors"`   // hard failures (always a bug)
	QPS      float64       `json:"qps"`
	// Open-loop arrival accounting: Offered = queries the arrival process
	// generated, Dropped = arrivals the bounded queue refused. Zero in
	// closed-loop mode, where offered load ≡ completed load.
	Offered int64 `json:"offered,omitempty"`
	Dropped int64 `json:"dropped,omitempty"`
	// Aborted reports the run stopped early on HardErrorLimit consecutive
	// hard errors; FirstError is the first hard error observed.
	Aborted    bool   `json:"aborted,omitempty"`
	FirstError string `json:"firstError,omitempty"`
	// Client-observed latency, per query type. Open-loop latencies count
	// from arrival (queue wait included) — that is the number a user sees.
	LookupLatency obs.HistSnapshot `json:"lookupLatency"`
	TopKLatency   obs.HistSnapshot `json:"topkLatency"`
}

// runState is the accounting shared by both arrival disciplines.
type runState struct {
	opt      Options
	lvl      serve.Level
	sobs     *obs.ServeObs
	rejected atomic.Int64
	shed     atomic.Int64
	failures atomic.Int64
	streak   atomic.Int64 // consecutive hard errors across all workers
	stop     atomic.Bool
	errOnce  sync.Once
	firstErr atomic.Value // string
}

// observe classifies one query outcome and handles the abort trip-wire.
// Returns false once the run should stop.
func (s *runState) observe(err error) bool {
	if err == nil {
		s.streak.Store(0)
		return !s.stop.Load()
	}
	var stale *serve.ErrTooStale
	var shed *serve.ErrShed
	switch {
	case errors.As(err, &stale):
		s.rejected.Add(1)
	case errors.As(err, &shed):
		s.shed.Add(1)
	default:
		s.failures.Add(1)
		s.errOnce.Do(func() { s.firstErr.Store(err.Error()) })
		if s.streak.Add(1) >= int64(s.opt.HardErrorLimit) {
			// A worker spinning on the same hard error would otherwise burn
			// the whole Duration at 100% CPU and still report "success".
			s.stop.Store(true)
		}
	}
	return !s.stop.Load()
}

// Run drives the engine with opt's workload and returns the aggregate
// report. It returns once Duration has elapsed (or the run aborted on
// persistent hard errors) and every in-flight query has completed.
func Run(eng *serve.Engine, opt Options) (Report, error) {
	if eng == nil {
		return Report{}, errors.New("loadgen: nil engine")
	}
	if err := opt.normalize(); err != nil {
		return Report{}, err
	}
	lvl := opt.Level
	if opt.UseDefault {
		lvl = eng.DefaultLevel()
	}
	st := &runState{opt: opt, lvl: lvl, sobs: obs.NewServeObs(opt.Workers)}
	startAll := time.Now()
	var offered, dropped int64
	if opt.ArrivalRate > 0 {
		offered, dropped = runOpen(eng, st, startAll)
	} else {
		runClosed(eng, st, startAll)
	}
	elapsed := time.Since(startAll)
	s := st.sobs.Snapshot()
	rep := Report{
		Mode:          "closed",
		Workers:       opt.Workers,
		Level:         lvl.String(),
		Elapsed:       elapsed,
		Lookups:       s.Lookups,
		TopKs:         s.TopKs,
		Rejected:      st.rejected.Load(),
		Shed:          st.shed.Load(),
		Errors:        st.failures.Load(),
		Ops:           s.Lookups + s.TopKs,
		Offered:       offered,
		Dropped:       dropped,
		Aborted:       st.stop.Load(),
		LookupLatency: s.LookupLatency,
		TopKLatency:   s.TopKLatency,
	}
	if opt.ArrivalRate > 0 {
		rep.Mode = "open"
	}
	if fe, ok := st.firstErr.Load().(string); ok {
		rep.FirstError = fe
	}
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.QPS = float64(rep.Ops) / secs
	}
	return rep, nil
}

// runClosed is the classic closed loop: each worker waits for its own
// previous query.
func runClosed(eng *serve.Engine, st *runState, startAll time.Time) {
	deadline := startAll.Add(st.opt.Duration)
	var wg sync.WaitGroup
	for w := 0; w < st.opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(st.opt.Seed + int64(w)*7919))
			keys := data.NewScrambledZipf(st.opt.Seed+int64(w), uint64(eng.Rows()), st.opt.Zipf)
			dst := make([]float32, eng.Dim())
			query := newQuery(eng.Dim(), rng)
			ctx := context.Background()
			for time.Now().Before(deadline) {
				var err error
				start := time.Now()
				if rng.Float64() < st.opt.TopKFraction {
					_, err = eng.Query(ctx, serve.Request{
						Vector: query, K: st.opt.K, Level: st.lvl,
						Index: st.opt.Index, NProbe: st.opt.NProbe,
					})
					if err == nil {
						st.sobs.TopK(w, time.Since(start))
					}
				} else {
					_, err = eng.Query(ctx, serve.Request{Key: keys.Next(), Dst: dst, Level: st.lvl})
					if err == nil {
						st.sobs.Lookup(w, time.Since(start))
					}
				}
				if !st.observe(err) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// arrival is one open-loop query, stamped at generation time so the
// recorded latency includes its wait in the (bounded) arrival queue.
type arrival struct {
	at    time.Time
	key   uint64
	isTop bool
}

// runOpen injects arrivals at Options.ArrivalRate into a bounded queue a
// worker pool drains. Returns (offered, dropped).
func runOpen(eng *serve.Engine, st *runState, startAll time.Time) (int64, int64) {
	queue := make(chan arrival, st.opt.MaxOutstanding)
	var wg sync.WaitGroup
	for w := 0; w < st.opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(st.opt.Seed + int64(w)*7919))
			dst := make([]float32, eng.Dim())
			query := newQuery(eng.Dim(), rng)
			ctx := context.Background()
			for a := range queue {
				if st.stop.Load() {
					continue // drain the queue without doing work
				}
				var err error
				if a.isTop {
					_, err = eng.Query(ctx, serve.Request{
						Vector: query, K: st.opt.K, Level: st.lvl,
						Index: st.opt.Index, NProbe: st.opt.NProbe,
					})
					if err == nil {
						st.sobs.TopK(w, time.Since(a.at))
					}
				} else {
					_, err = eng.Query(ctx, serve.Request{Key: a.key, Dst: dst, Level: st.lvl})
					if err == nil {
						st.sobs.Lookup(w, time.Since(a.at))
					}
				}
				st.observe(err)
			}
		}(w)
	}

	// The dispatcher paces arrivals with a fractional accumulator over a
	// 1ms tick: acc += rate·dt, and ⌊acc⌋ arrivals fire per tick. Rates
	// below 1000/s emit on the ticks where the accumulator crosses 1, so
	// any rate is honoured in expectation without a per-arrival timer.
	var offered, dropped int64
	rng := rand.New(rand.NewSource(st.opt.Seed*31 + 17))
	keys := data.NewScrambledZipf(st.opt.Seed*31+17, uint64(eng.Rows()), st.opt.Zipf)
	deadline := startAll.Add(st.opt.Duration)
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	acc := 0.0
	last := startAll
	for now := range tick.C {
		if now.After(deadline) || st.stop.Load() {
			break
		}
		acc += st.opt.ArrivalRate * now.Sub(last).Seconds()
		last = now
		for ; acc >= 1; acc-- {
			a := arrival{at: now, key: keys.Next(), isTop: rng.Float64() < st.opt.TopKFraction}
			offered++
			select {
			case queue <- a:
			default:
				// Queue full: the engine is this far behind the offered
				// rate. Drop at the client rather than queue unboundedly.
				dropped++
			}
		}
	}
	close(queue)
	wg.Wait()
	return offered, dropped
}

func newQuery(dim int, rng *rand.Rand) []float32 {
	q := make([]float32, dim)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	return q
}
