// Package loadgen is a closed-loop load generator for the serving engine:
// N workers issue lookup and top-K queries back-to-back against an
// Engine, keys drawn from a scrambled-Zipf distribution (the access skew
// every embedding workload in the paper exhibits), latencies recorded
// through the same obs histograms the engine itself uses. Closed-loop
// means each worker waits for its previous query before issuing the next
// — the measured latency is service latency, not queue-wait under an
// open-arrival overload.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"frugal/internal/data"
	"frugal/internal/obs"
	"frugal/internal/serve"
)

// Options configures a load run.
type Options struct {
	// Workers is the closed-loop concurrency (default 4).
	Workers int
	// Duration is how long to run (default 2s).
	Duration time.Duration
	// Zipf is the key-skew exponent θ of the scrambled-Zipf draw
	// (default 0.9, the evaluation default; 0 < θ < 1).
	Zipf float64
	// TopKFraction is the fraction of queries that are top-K similarity
	// searches instead of lookups (default 0.05).
	TopKFraction float64
	// K is the top-K result size (default 10).
	K int
	// Level is the consistency level of every query (default: the
	// engine's default).
	Level serve.Level
	// UseDefault keeps the engine's default level even if Level is zero.
	// (The zero Level is a valid level — Stale — so Options distinguishes
	// "unset" explicitly.)
	UseDefault bool
	// Seed makes the key sequence reproducible (default 1).
	Seed int64
}

func (o *Options) normalize() error {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Workers < 0 {
		return fmt.Errorf("loadgen: Workers must be ≥ 1, got %d", o.Workers)
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.Duration < 0 {
		return fmt.Errorf("loadgen: Duration must be positive, got %v", o.Duration)
	}
	if o.Zipf == 0 {
		o.Zipf = 0.9
	}
	if o.Zipf <= 0 || o.Zipf >= 1 {
		return fmt.Errorf("loadgen: Zipf θ must be in (0, 1), got %v", o.Zipf)
	}
	if o.TopKFraction == 0 {
		o.TopKFraction = 0.05
	}
	if o.TopKFraction < 0 || o.TopKFraction > 1 {
		return fmt.Errorf("loadgen: TopKFraction must be in [0, 1], got %v", o.TopKFraction)
	}
	if o.K == 0 {
		o.K = 10
	}
	if o.K < 1 {
		return fmt.Errorf("loadgen: K must be ≥ 1, got %d", o.K)
	}
	if err := o.Level.Validate(); err != nil {
		return err
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// Report summarises one load run.
type Report struct {
	Workers  int           `json:"workers"`
	Level    string        `json:"level"`
	Elapsed  time.Duration `json:"elapsedNanos"`
	Ops      int64         `json:"ops"`
	Lookups  int64         `json:"lookups"`
	TopKs    int64         `json:"topks"`
	Rejected int64         `json:"rejected"` // bounded reads refused (RejectStale engines)
	Errors   int64         `json:"errors"`   // non-staleness failures (always a bug)
	QPS      float64       `json:"qps"`
	// Client-observed latency, per query type.
	LookupLatency obs.HistSnapshot `json:"lookupLatency"`
	TopKLatency   obs.HistSnapshot `json:"topkLatency"`
}

// Run drives the engine with opt's workload and returns the aggregate
// report. It returns once Duration has elapsed and every in-flight query
// has completed.
func Run(eng *serve.Engine, opt Options) (Report, error) {
	if eng == nil {
		return Report{}, errors.New("loadgen: nil engine")
	}
	if err := opt.normalize(); err != nil {
		return Report{}, err
	}
	lvl := opt.Level
	if opt.UseDefault {
		lvl = eng.DefaultLevel()
	}
	sobs := obs.NewServeObs(opt.Workers)
	var rejected, failures atomic.Int64
	startAll := time.Now()
	deadline := startAll.Add(opt.Duration)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(w)*7919))
			keys := data.NewScrambledZipf(opt.Seed+int64(w), uint64(eng.Rows()), opt.Zipf)
			dst := make([]float32, eng.Dim())
			query := make([]float32, eng.Dim())
			for i := range query {
				query[i] = float32(rng.NormFloat64())
			}
			for time.Now().Before(deadline) {
				var err error
				start := time.Now()
				if rng.Float64() < opt.TopKFraction {
					_, err = eng.TopK(query, opt.K, lvl)
					if err == nil {
						sobs.TopK(w, time.Since(start))
					}
				} else {
					_, err = eng.Lookup(keys.Next(), dst, lvl)
					if err == nil {
						sobs.Lookup(w, time.Since(start))
					}
				}
				if err != nil {
					var stale *serve.ErrTooStale
					if errors.As(err, &stale) {
						rejected.Add(1)
					} else {
						failures.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(startAll)
	s := sobs.Snapshot()
	rep := Report{
		Workers:       opt.Workers,
		Level:         lvl.String(),
		Elapsed:       elapsed,
		Lookups:       s.Lookups,
		TopKs:         s.TopKs,
		Rejected:      rejected.Load(),
		Errors:        failures.Load(),
		Ops:           s.Lookups + s.TopKs,
		LookupLatency: s.LookupLatency,
		TopKLatency:   s.TopKLatency,
	}
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.QPS = float64(rep.Ops) / secs
	}
	return rep, nil
}
