package serve_test

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"

	"frugal/internal/serve"
)

// TestHTTPServerShutdownNoLeak runs the graceful server end to end —
// bind, serve traffic, drain — and asserts the goroutine count settles
// back to its pre-server level: shutdown must not strand acceptor or
// connection goroutines.
func TestHTTPServerShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	h := staticHost(t, 64, 4)
	eng, err := serve.NewStatic(h, serve.Options{MaxInflight: 16, RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := serve.NewHTTPServer("127.0.0.1:0", eng.Handler())
	if err != nil {
		t.Fatal(err)
	}
	if hs.Addr() == "" || hs.Addr() == "127.0.0.1:0" {
		t.Fatalf("Addr() = %q, want a resolved port", hs.Addr())
	}
	served := make(chan error, 1)
	go func() { served <- hs.Serve() }()

	client := &http.Client{Timeout: 2 * time.Second}
	for i := 0; i < 8; i++ {
		resp, err := client.Get(fmt.Sprintf("http://%s/lookup?key=%d", hs.Addr(), i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup %d: status %d", i, resp.StatusCode)
		}
	}
	client.CloseIdleConnections()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
	}
	// A request after shutdown must be refused at the socket.
	if _, err := client.Get("http://" + hs.Addr() + "/healthz"); err == nil {
		t.Fatal("request succeeded after Shutdown")
	}

	// Goroutines wind down asynchronously after Shutdown returns; give
	// them a settle window before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before server, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHTTPServerBindError pins the failure mode: a taken port errors at
// construction, not at first request.
func TestHTTPServerBindError(t *testing.T) {
	h := staticHost(t, 8, 4)
	eng, err := serve.NewStatic(h, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := serve.NewHTTPServer("127.0.0.1:0", eng.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := serve.NewHTTPServer(first.Addr(), eng.Handler()); err == nil {
		t.Fatal("second bind on the same port succeeded")
	}
}
