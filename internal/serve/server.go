package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// HTTPServer wraps http.Server with the lifecycle cmd/frugal-serve (and
// any embedder) needs: bind first so the listen address — including a
// kernel-assigned :0 port — is known before serving, then drain in-flight
// connections on Shutdown instead of dropping them mid-response.
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener
}

// NewHTTPServer binds addr (host:port; port 0 picks a free port) and
// returns a server ready to Serve the handler. The listener is open on
// return — connections queue in the kernel until Serve runs.
func NewHTTPServer(addr string, handler http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &HTTPServer{
		srv: &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second},
		ln:  ln,
	}, nil
}

// Addr returns the bound listen address (resolved, so ":0" reports the
// real port).
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until Shutdown (or Close). It blocks; run it
// in its own goroutine. A Shutdown-initiated stop returns nil rather than
// http.ErrServerClosed — orderly exit is not an error.
func (s *HTTPServer) Serve() error {
	err := s.srv.Serve(s.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to drain, up to ctx's deadline. On deadline it returns ctx's
// error with the remaining connections forcibly closed by Close.
func (s *HTTPServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Drain deadline hit: cut the stragglers rather than leak their
		// goroutines past the caller's shutdown budget.
		s.srv.Close()
	}
	return err
}

// Close force-closes the listener and every active connection.
func (s *HTTPServer) Close() error { return s.srv.Close() }
