package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"frugal/internal/runtime"
)

func admitHost(t *testing.T, rows int64, dim int) *runtime.Host {
	t.Helper()
	h, err := runtime.NewHost(rows, dim)
	if err != nil {
		t.Fatal(err)
	}
	h.Init(func(key uint64, row []float32) { row[0] = float32(key) })
	return h
}

func (a *admission) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters)
}

func TestAdmissionFastPathAndShed(t *testing.T) {
	a := newAdmission(4, 5*time.Millisecond, 2)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := a.Acquire(ctx, 1, classLookup); err != nil {
			t.Fatalf("uncontended acquire %d: %v", i, err)
		}
	}
	if got := a.Inflight(); got != 4 {
		t.Fatalf("inflight = %d, want 4", got)
	}
	// Pool full: a bounded wait, then a shed.
	start := time.Now()
	err := a.Acquire(ctx, 1, classLookup)
	var shed *ErrShed
	if !errors.As(err, &shed) {
		t.Fatalf("over-capacity acquire = %v, want *ErrShed", err)
	}
	if shed.Class != classLookup || shed.RetryAfter != 5*time.Millisecond {
		t.Fatalf("shed = %+v", shed)
	}
	if waited := time.Since(start); waited < 5*time.Millisecond {
		t.Fatalf("shed after %v, want a full AdmitWait", waited)
	}
	// A shed waiter must not linger in the queue.
	if got := a.queued(); got != 0 {
		t.Fatalf("queued after shed = %d, want 0", got)
	}
	a.Release(1)
	if err := a.Acquire(ctx, 1, classLookup); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestAdmissionQueueFullShedsInstantly(t *testing.T) {
	a := newAdmission(1, time.Minute, 1) // one slot, one waiter, huge wait
	ctx := context.Background()
	if err := a.Acquire(ctx, 1, classLookup); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(ctx, 1, classLookup) }()
	for a.queued() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	// Queue at MaxWaiters: the next arrival is shed without waiting.
	start := time.Now()
	err := a.Acquire(ctx, 1, classTopK)
	var shed *ErrShed
	if !errors.As(err, &shed) {
		t.Fatalf("queue-full acquire = %v, want *ErrShed", err)
	}
	if shed.Waited != 0 {
		t.Fatalf("queue-full shed waited %v, want 0", shed.Waited)
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("queue-full shed took %v — it queued", since)
	}
	a.Release(1)
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.Release(1)
}

// TestAdmissionFIFONoBarging pins the ordering: a 1-unit lookup arriving
// behind a queued 3-unit top-K must not slip past it when 1 unit frees.
func TestAdmissionFIFONoBarging(t *testing.T) {
	a := newAdmission(3, time.Minute, 8)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := a.Acquire(ctx, 1, classLookup); err != nil {
			t.Fatal(err)
		}
	}
	var topkDone, lookupDone atomic.Bool
	topkErr := make(chan error, 1)
	go func() {
		err := a.Acquire(ctx, 3, classTopK)
		topkDone.Store(true)
		topkErr <- err
	}()
	for a.queued() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	lookupErr := make(chan error, 1)
	go func() {
		err := a.Acquire(ctx, 1, classLookup)
		lookupDone.Store(true)
		lookupErr <- err
	}()
	for a.queued() < 2 {
		time.Sleep(100 * time.Microsecond)
	}
	a.Release(1) // 1 unit free: head needs 3 — nobody may pass it
	time.Sleep(2 * time.Millisecond)
	if topkDone.Load() || lookupDone.Load() {
		t.Fatal("a waiter was admitted past the FIFO head")
	}
	a.Release(1)
	a.Release(1) // 3 free: the top-K head goes first
	if err := <-topkErr; err != nil {
		t.Fatalf("top-K waiter: %v", err)
	}
	a.Release(3) // now the lookup
	if err := <-lookupErr; err != nil {
		t.Fatalf("lookup waiter: %v", err)
	}
}

func TestAdmissionContextCanceled(t *testing.T) {
	a := newAdmission(1, time.Minute, 8)
	if err := a.Acquire(context.Background(), 1, classLookup); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- a.Acquire(ctx, 1, classLookup) }()
	for a.queued() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire = %v, want context.Canceled", err)
	}
	if got := a.queued(); got != 0 {
		t.Fatalf("queued after cancel = %d, want 0", got)
	}
	a.Release(1)
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

// TestEngineShedsUnderHeldCapacity fills the engine's admission pool by
// hand and checks the full overload surface: *ErrShed from the Go API,
// the shed metric, and 429 + Retry-After from the HTTP layer.
func TestEngineShedsUnderHeldCapacity(t *testing.T) {
	h := admitHost(t, 64, 4)
	eng, err := NewStatic(h, Options{
		MaxInflight: 8, TopKWeight: 8, AdmitWait: time.Millisecond, MaxWaiters: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the whole pool, as one in-flight top-K would.
	if err := eng.adm.Acquire(context.Background(), 8, classTopK); err != nil {
		t.Fatal(err)
	}
	if got := eng.Inflight(); got != 8 {
		t.Fatalf("Inflight = %d, want 8", got)
	}

	dst := make([]float32, 4)
	_, err = eng.Query(context.Background(), Request{Key: 3, Dst: dst, Level: Stale()})
	var shed *ErrShed
	if !errors.As(err, &shed) {
		t.Fatalf("lookup under held capacity = %v, want *ErrShed", err)
	}
	_, err = eng.Query(context.Background(), Request{Vector: []float32{1, 0, 0, 0}, K: 3, Level: Stale()})
	if !errors.As(err, &shed) {
		t.Fatalf("topK under held capacity = %v, want *ErrShed", err)
	}

	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/lookup?key=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed HTTP status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if m := eng.Metrics(); m.Shed < 3 {
		t.Fatalf("shed counter = %d, want ≥ 3", m.Shed)
	}

	// Release the pool: service resumes, nothing was queued behind it.
	eng.adm.Release(8)
	if _, err := eng.Query(context.Background(), Request{Key: 3, Dst: dst, Level: Stale()}); err != nil {
		t.Fatalf("lookup after release: %v", err)
	}
	if got := eng.Inflight(); got != 0 {
		t.Fatalf("Inflight after drain = %d, want 0", got)
	}
}

func TestEngineCanceledContext(t *testing.T) {
	h := admitHost(t, 64, 4)
	eng, err := NewStatic(h, Options{MaxInflight: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]float32, 4)
	if _, err := eng.Query(ctx, Request{Key: 3, Dst: dst, Level: Stale()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("lookup on canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := eng.Query(ctx, Request{Vector: []float32{1, 0, 0, 0}, K: 3, Level: Stale()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("topK on canceled ctx = %v, want context.Canceled", err)
	}
	if m := eng.Metrics(); m.Canceled < 2 {
		t.Fatalf("canceled counter = %d, want ≥ 2", m.Canceled)
	}
	if got := eng.Inflight(); got != 0 {
		t.Fatalf("Inflight after canceled requests = %d, want 0 (slot leaked)", got)
	}
}

// TestAdmittedLookupAllocationFree proves admission control does not cost
// the hot path its zero-allocation property: the uncontended acquire is a
// mutex and two integer updates, nothing more.
func TestAdmittedLookupAllocationFree(t *testing.T) {
	h := admitHost(t, 256, 16)
	eng, err := NewStatic(h, Options{MaxInflight: 64})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 16)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := eng.Query(ctx, Request{Key: 42, Dst: dst, Level: Stale()}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("admitted lookup allocates %.1f/op, want 0", allocs)
	}
}

// TestWriteErrorDeadlineMapsTo503 pins the HTTP contract for requests
// that outlive their deadline: 503 plus Retry-After, distinct from the
// 400 a malformed request gets.
func TestWriteErrorDeadlineMapsTo503(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, context.DeadlineExceeded)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("deadline status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("deadline response missing Retry-After")
	}
	rec = httptest.NewRecorder()
	writeError(rec, &ErrShed{Class: classLookup, RetryAfter: 1500 * time.Millisecond})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q (1.5s rounds up to whole seconds)", ra, "2")
	}
}

func TestOptionsAdmissionValidation(t *testing.T) {
	h := admitHost(t, 8, 4)
	bad := []Options{
		{MaxInflight: -1},
		{MaxInflight: 4, TopKWeight: 8}, // weight exceeds capacity
		{MaxInflight: 8, TopKWeight: -2},
		{MaxInflight: 8, AdmitWait: -time.Second},
		{MaxInflight: 8, MaxWaiters: -1},
		{RequestTimeout: -time.Second},
	}
	for i, opt := range bad {
		if _, err := NewStatic(h, opt); err == nil {
			t.Errorf("case %d accepted: %+v", i, opt)
		}
	}
	// Defaults fill in when admission is on.
	eng, err := NewStatic(h, Options{MaxInflight: 16})
	if err != nil {
		t.Fatal(err)
	}
	if eng.opt.TopKWeight != 8 || eng.opt.AdmitWait != 5*time.Millisecond || eng.opt.MaxWaiters != 64 {
		t.Fatalf("admission defaults = %+v", eng.opt)
	}
	// Off by default: no admission state at all.
	plain, err := NewStatic(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.adm != nil || plain.Inflight() != 0 {
		t.Fatal("admission enabled without MaxInflight")
	}
}
