package pq

import "testing"

// TestProcessBatchZeroAlloc pins the flusher dequeue path: ProcessBatch
// visits entries in place in both queue implementations — no dequeue-batch
// buffer, no per-visit boxing — so a flush cycle's only allocations happen
// on the enqueue side. The assert is exact: any regression means a scratch
// buffer crept back into the drain path.
func TestProcessBatchZeroAlloc(t *testing.T) {
	const (
		batch   = 64
		runs    = 20
		entries = (runs + 2) * batch // AllocsPerRun adds one untimed call
	)
	queues := map[string]func() Queue{
		"twolevel": func() Queue {
			q, err := NewTwoLevelPQ(TwoLevelOptions{MaxStep: entries})
			if err != nil {
				t.Fatal(err)
			}
			return q
		},
		"treeheap": func() Queue { return NewTreeHeap(entries) },
	}
	for name, mk := range queues {
		t.Run(name, func(t *testing.T) {
			q := mk()
			for i := 0; i < entries; i++ {
				g := NewGEntry(uint64(i))
				g.AddRead(int64(i))
				g.AddWrite(int64(i), nil)
				g.Priority = g.ComputePriority()
				g.InQueue = true
				q.Enqueue(g, g.Priority)
			}
			claim := func(g *GEntry, slotPriority int64) bool {
				if !g.InQueue || g.Priority != slotPriority {
					return false
				}
				g.InQueue = false
				return true
			}
			got := testing.AllocsPerRun(runs, func() {
				if n := q.ProcessBatch(batch, claim); n == 0 {
					t.Fatal("queue drained before the measurement finished")
				}
			})
			if got != 0 {
				t.Fatalf("ProcessBatch allocates %v times per call, want 0", got)
			}
		})
	}
}
