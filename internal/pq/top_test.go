package pq

import "testing"

// TestTopSelfHealsBelowRaisedLowerBound plants a live finite entry below a
// raised scan lower bound — the outcome of the Enqueue/RaiseLowerBound
// race the compressed scan range admits — and asserts Top still reports
// it. Before the fallback, Top returned Inf here: an over-report that
// would open the consistency gate while an unflushed entry with a pending
// read was still queued (a stale read). Dequeue has self-healed this race
// since the beginning (twolevel.go's compressed-scan fallback); Top now
// shares it.
func TestTopSelfHealsBelowRaisedLowerBound(t *testing.T) {
	q := MustTwoLevelPQ(TwoLevelOptions{MaxStep: 100})
	g := NewGEntry(1)
	g.Mu.Lock()
	q.Enqueue(g, 5)
	g.Mu.Unlock()

	// Simulate the race: the bound is raised past a live entry (the
	// RaiseLowerBound contract says this cannot happen for settled state,
	// but a concurrent enqueue below the bound can interleave with the
	// casMin/casMax pair in exactly this order).
	q.RaiseLowerBound(20)

	if top := q.Top(); top != 5 {
		t.Fatalf("Top = %d, want 5: gate would open over a live finite entry", top)
	}
	// The fallback must also have healed the bound so dequeuers find the
	// entry without their own full rescan.
	got, p, ok := q.Dequeue()
	if !ok || p != 5 || got != g {
		t.Fatalf("Dequeue after heal = (%v, %d, %v), want (entry, 5, true)", got, p, ok)
	}
	if top := q.Top(); top != Inf {
		t.Fatalf("Top on drained queue = %d, want Inf", top)
	}
}

// TestTopSkipsFallbackWhenOnlyDeferred pins the guard: with only ∞
// (deferred) entries queued, Top must return Inf without disturbing the
// compressed bounds — the fallback is for racing *finite* entries only.
func TestTopSkipsFallbackWhenOnlyDeferred(t *testing.T) {
	q := MustTwoLevelPQ(TwoLevelOptions{MaxStep: 100})
	// Raise upper via a finite entry that is then moved to ∞, leaving the
	// queue with deferred work only.
	g := NewGEntry(2)
	g.Mu.Lock()
	q.Enqueue(g, 30)
	q.AdjustPriority(g, 30, Inf)
	g.Mu.Unlock()
	q.RaiseLowerBound(40)
	if top := q.Top(); top != Inf {
		t.Fatalf("Top = %d, want Inf (only deferred work queued)", top)
	}
	// The lower bound must be untouched: the fallback (which resets it to
	// 0) should not have run at all.
	if lo := q.lower.Load(); lo != 40 {
		t.Fatalf("lower bound = %d, want 40 (fallback ran on deferred-only state)", lo)
	}
}
