package pq

import (
	"runtime"
	"sync/atomic"

	"frugal/internal/obs"
)

// spinLock is a test-and-set spin lock with passive back-off — the locking
// primitive the paper's TreeHeap baseline uses around heap nodes. We apply
// it at heap granularity: a classic binary min-heap must keep its array and
// its key→position index mutually consistent during sift-up/down and
// adjust-priority, so every operation serialises on the near-root region
// anyway; a single spin lock is the limiting behaviour of that contention
// (this substitution is recorded in DESIGN.md). What Exp #4 measures —
// O(log N) operations that serialise, versus the two-level PQ's scalable
// O(1) operations — is preserved.
type spinLock struct{ v atomic.Int32 }

func (l *spinLock) Lock() {
	for !l.v.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

func (l *spinLock) Unlock() { l.v.Store(0) }

type heapItem struct {
	g *GEntry
	p int64
}

// TreeHeap is the baseline concurrent priority queue of Exp #4: a binary
// tree min-heap ordered by priority, with a position index so that
// AdjustPriority can locate an entry in O(1) before an O(log N) fix-up.
type TreeHeap struct {
	lock  spinLock
	items []heapItem
	pos   map[uint64]int // key → index in items
	o     *obs.PQObs     // operation counters (nil = off)
}

// SetObserver attaches an observability sink (nil detaches). Call before
// the queue sees traffic.
func (h *TreeHeap) SetObserver(o *obs.PQObs) { h.o = o }

// NewTreeHeap returns an empty heap sized for `hint` entries.
func NewTreeHeap(hint int) *TreeHeap {
	if hint < 0 {
		hint = 0
	}
	return &TreeHeap{
		items: make([]heapItem, 0, hint),
		pos:   make(map[uint64]int, hint),
	}
}

// Enqueue inserts g under priority p. The caller must hold g.Mu (same
// contract as TwoLevelPQ so the two are interchangeable behind Queue).
func (h *TreeHeap) Enqueue(g *GEntry, p int64) {
	g.Priority = p
	g.InQueue = true
	h.lock.Lock()
	h.items = append(h.items, heapItem{g: g, p: p})
	i := len(h.items) - 1
	h.pos[g.Key] = i
	h.siftUp(i)
	h.lock.Unlock()
	h.o.Enqueue(g.Key)
}

// Dequeue removes and returns the minimum-priority entry. The removal and
// the claim (g.InQueue = false) happen atomically with respect to the
// controller, which mutates entries under g.Mu before touching the heap:
// Dequeue acquires g.Mu with TryLock while holding the heap lock (the
// opposite order would deadlock against Enqueue/AdjustPriority callers).
func (h *TreeHeap) Dequeue() (*GEntry, int64, bool) {
	for {
		h.lock.Lock()
		if len(h.items) == 0 {
			h.lock.Unlock()
			return nil, 0, false
		}
		top := h.items[0]
		if !top.g.Mu.TryLock() {
			// The controller is mutating this entry; back off and retry.
			h.lock.Unlock()
			runtime.Gosched()
			continue
		}
		h.removeAt(0)
		top.g.InQueue = false
		top.g.Mu.Unlock()
		h.lock.Unlock()
		h.o.Dequeue(top.g.Key)
		return top.g, top.p, true
	}
}

// DequeueBatch appends up to max minimum-priority entries to dst.
func (h *TreeHeap) DequeueBatch(dst []*GEntry, max int) []*GEntry {
	for i := 0; i < max; i++ {
		g, _, ok := h.Dequeue()
		if !ok {
			break
		}
		dst = append(dst, g)
	}
	return dst
}

// ProcessBatch visits up to max minimum-priority entries, calling fn on
// each before removing it from the heap. The heap lock is held across fn,
// so Top() (and every other operation) blocks until the flush completes —
// the coarse-grained equivalent of the two-level PQ's visible-until-
// flushed protocol, and a cost the Exp #4 comparison charges to TreeHeap.
func (h *TreeHeap) ProcessBatch(max int, fn func(g *GEntry, slotPriority int64) bool) int {
	processed := 0
	for processed < max {
		h.lock.Lock()
		if len(h.items) == 0 {
			h.lock.Unlock()
			return processed
		}
		top := h.items[0]
		if !top.g.Mu.TryLock() {
			// The controller holds this entry; retry with locks dropped
			// (taking g.Mu outright here would deadlock against
			// Enqueue/AdjustPriority callers, which lock g.Mu first).
			h.lock.Unlock()
			runtime.Gosched()
			continue
		}
		fn(top.g, top.p)
		h.removeAt(0)
		top.g.Mu.Unlock()
		h.lock.Unlock()
		h.o.Dequeue(top.g.Key)
		processed++
	}
	return processed
}

// AdjustPriority moves g from priority old to new. The caller must hold
// g.Mu.
func (h *TreeHeap) AdjustPriority(g *GEntry, old, new int64) {
	if old == new {
		return
	}
	g.Priority = new
	h.lock.Lock()
	i, ok := h.pos[g.Key]
	if !ok {
		h.lock.Unlock()
		return
	}
	h.items[i].p = new
	if new < old {
		h.siftUp(i)
	} else {
		h.siftDown(i)
	}
	h.lock.Unlock()
	h.o.Adjust(g.Key)
}

// Top returns the minimum priority in the heap, or Inf when empty.
func (h *TreeHeap) Top() int64 {
	h.lock.Lock()
	defer h.lock.Unlock()
	if len(h.items) == 0 {
		return Inf
	}
	return h.items[0].p
}

// Len returns the number of entries.
func (h *TreeHeap) Len() int {
	h.lock.Lock()
	defer h.lock.Unlock()
	return len(h.items)
}

// removeAt deletes the item at index i, maintaining the heap. Lock held.
func (h *TreeHeap) removeAt(i int) {
	last := len(h.items) - 1
	delete(h.pos, h.items[i].g.Key)
	if i != last {
		h.items[i] = h.items[last]
		h.pos[h.items[i].g.Key] = i
	}
	h.items = h.items[:last]
	if i < len(h.items) {
		h.siftDown(i)
		h.siftUp(i)
	}
}

func (h *TreeHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].p <= h.items[i].p {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *TreeHeap) siftDown(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		small := i
		if left < n && h.items[left].p < h.items[small].p {
			small = left
		}
		if right < n && h.items[right].p < h.items[small].p {
			small = right
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

func (h *TreeHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].g.Key] = i
	h.pos[h.items[j].g.Key] = j
}

var _ Queue = (*TreeHeap)(nil)
