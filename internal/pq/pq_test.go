package pq

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func newTwoLevel(t testing.TB, maxStep int64) Queue {
	q, err := NewTwoLevelPQ(TwoLevelOptions{MaxStep: maxStep, TableHint: 256})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// queues returns both implementations so every contract test runs against
// the two-level PQ and the TreeHeap baseline.
func queues(t testing.TB, maxStep int64) map[string]Queue {
	return map[string]Queue{
		"twolevel": newTwoLevel(t, maxStep),
		"treeheap": NewTreeHeap(16),
	}
}

func enq(q Queue, g *GEntry, p int64) {
	g.Mu.Lock()
	q.Enqueue(g, p)
	g.Mu.Unlock()
}

func adj(q Queue, g *GEntry, p int64) {
	g.Mu.Lock()
	q.AdjustPriority(g, g.Priority, p)
	g.Mu.Unlock()
}

func TestGEntryPriorityEquation(t *testing.T) {
	g := NewGEntry(1)
	g.Mu.Lock()
	defer g.Mu.Unlock()
	// Empty R and W → ∞.
	if p := g.ComputePriority(); p != Inf {
		t.Fatalf("empty entry priority = %d, want Inf", p)
	}
	// R non-empty, W empty → ∞ (nothing pending to flush).
	g.AddRead(5)
	if p := g.ComputePriority(); p != Inf {
		t.Fatalf("W=∅ priority = %d, want Inf", p)
	}
	// Both non-empty → min(R).
	g.AddWrite(3, []float32{1})
	if p := g.ComputePriority(); p != 5 {
		t.Fatalf("priority = %d, want 5", p)
	}
	g.AddRead(2)
	if p := g.ComputePriority(); p != 2 {
		t.Fatalf("priority after AddRead(2) = %d, want 2", p)
	}
	// W non-empty, R empty → ∞ (deferred flush, the k₃ case of Fig 6).
	g.RemoveRead(2)
	g.RemoveRead(5)
	if p := g.ComputePriority(); p != Inf {
		t.Fatalf("R=∅ priority = %d, want Inf", p)
	}
}

func TestGEntryReadSetOps(t *testing.T) {
	g := NewGEntry(7)
	g.Mu.Lock()
	defer g.Mu.Unlock()
	for _, s := range []int64{5, 1, 3, 1, 5} { // duplicates are idempotent
		g.AddRead(s)
	}
	want := []int64{1, 3, 5}
	if len(g.R) != len(want) {
		t.Fatalf("R = %v, want %v", g.R, want)
	}
	for i := range want {
		if g.R[i] != want[i] {
			t.Fatalf("R = %v, want %v", g.R, want)
		}
	}
	if !g.RemoveRead(3) {
		t.Fatal("RemoveRead(3) should succeed")
	}
	if g.RemoveRead(3) {
		t.Fatal("second RemoveRead(3) should fail")
	}
	if g.RemoveRead(4) {
		t.Fatal("RemoveRead(4) of absent step should fail")
	}
	if len(g.R) != 2 || g.R[0] != 1 || g.R[1] != 5 {
		t.Fatalf("R = %v, want [1 5]", g.R)
	}
}

func TestGEntryTakeWrites(t *testing.T) {
	g := NewGEntry(1)
	g.Mu.Lock()
	g.AddWrite(0, []float32{1})
	g.AddWrite(1, []float32{2})
	w := g.TakeWrites()
	g.Mu.Unlock()
	if len(w) != 2 || w[0].Step != 0 || w[1].Step != 1 {
		t.Fatalf("TakeWrites = %v", w)
	}
	if len(g.W) != 0 {
		t.Fatal("W should be empty after TakeWrites")
	}
}

func TestGEntryString(t *testing.T) {
	g := NewGEntry(3)
	if s := g.String(); s == "" {
		t.Fatal("empty String()")
	}
	g.Priority = 7
	if s := g.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestQueueOrdering(t *testing.T) {
	for name, q := range queues(t, 100) {
		t.Run(name, func(t *testing.T) {
			prios := []int64{42, 7, Inf, 0, 99, 13}
			for i, p := range prios {
				enq(q, NewGEntry(uint64(i)), p)
			}
			if q.Len() != len(prios) {
				t.Fatalf("Len = %d, want %d", q.Len(), len(prios))
			}
			if top := q.Top(); top != 0 {
				t.Fatalf("Top = %d, want 0", top)
			}
			var got []int64
			for {
				_, p, ok := q.Dequeue()
				if !ok {
					break
				}
				got = append(got, p)
			}
			want := append([]int64{}, prios...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("dequeued %d entries, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dequeue order %v, want %v", got, want)
				}
			}
			if top := q.Top(); top != Inf {
				t.Fatalf("Top on empty = %d, want Inf", top)
			}
		})
	}
}

func TestQueueAdjustPriority(t *testing.T) {
	for name, q := range queues(t, 100) {
		t.Run(name, func(t *testing.T) {
			a, b := NewGEntry(1), NewGEntry(2)
			enq(q, a, 10)
			enq(q, b, 20)
			adj(q, a, 50) // a: 10 → 50; b now smallest
			g, p, ok := q.Dequeue()
			if !ok || g.Key != 2 || p != 20 {
				t.Fatalf("Dequeue = (%v,%d,%v), want b@20", g, p, ok)
			}
			g, p, ok = q.Dequeue()
			if !ok || g.Key != 1 || p != 50 {
				t.Fatalf("Dequeue = (%v,%d,%v), want a@50", g, p, ok)
			}
			if q.Len() != 0 {
				t.Fatalf("Len = %d after drain", q.Len())
			}
		})
	}
}

func TestQueueAdjustToInf(t *testing.T) {
	for name, q := range queues(t, 100) {
		t.Run(name, func(t *testing.T) {
			a := NewGEntry(1)
			enq(q, a, 5)
			adj(q, a, Inf)
			if top := q.Top(); top != Inf {
				t.Fatalf("Top = %d, want Inf after deferring the only entry", top)
			}
			g, p, ok := q.Dequeue()
			if !ok || p != Inf || g.Key != 1 {
				t.Fatalf("deferred entry should still drain: (%v,%d,%v)", g, p, ok)
			}
		})
	}
}

func TestQueueDequeueBatch(t *testing.T) {
	for name, q := range queues(t, 1000) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 50; i++ {
				enq(q, NewGEntry(uint64(i)), int64(i))
			}
			batch := q.DequeueBatch(nil, 20)
			if len(batch) != 20 {
				t.Fatalf("batch len = %d, want 20", len(batch))
			}
			rest := q.DequeueBatch(nil, 100)
			if len(rest) != 30 {
				t.Fatalf("rest len = %d, want 30", len(rest))
			}
			// Batch respects priority order: every priority in the first
			// batch is ≤ every priority in the second.
			maxFirst, minRest := int64(-1), Inf
			for _, g := range batch {
				if g.Priority > maxFirst {
					maxFirst = g.Priority
				}
			}
			for _, g := range rest {
				if g.Priority < minRest {
					minRest = g.Priority
				}
			}
			if maxFirst > minRest {
				t.Fatalf("priority inversion across batches: %d > %d", maxFirst, minRest)
			}
		})
	}
}

func TestQueueEmptyDequeue(t *testing.T) {
	for name, q := range queues(t, 10) {
		t.Run(name, func(t *testing.T) {
			if _, _, ok := q.Dequeue(); ok {
				t.Fatal("Dequeue on empty should fail")
			}
			if got := q.DequeueBatch(nil, 5); len(got) != 0 {
				t.Fatal("DequeueBatch on empty should return nothing")
			}
			if q.Top() != Inf {
				t.Fatal("Top on empty should be Inf")
			}
		})
	}
}

func TestTwoLevelPQValidation(t *testing.T) {
	if _, err := NewTwoLevelPQ(TwoLevelOptions{MaxStep: -1}); err == nil {
		t.Fatal("negative MaxStep should error")
	}
	if _, err := NewTwoLevelPQ(TwoLevelOptions{MaxStep: 1 << 30}); err == nil {
		t.Fatal("huge MaxStep should error")
	}
	q := MustTwoLevelPQ(TwoLevelOptions{MaxStep: 10})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range priority should panic")
			}
		}()
		enq(q, NewGEntry(1), 11)
	}()
}

func TestTwoLevelScanCompressionEquivalence(t *testing.T) {
	// With and without scan-range compression the queue must drain the
	// same entries in the same priority order.
	on := MustTwoLevelPQ(TwoLevelOptions{MaxStep: 5000})
	off := MustTwoLevelPQ(TwoLevelOptions{MaxStep: 5000, DisableScanCompression: true})
	if !on.ScanCompressionEnabled() || off.ScanCompressionEnabled() {
		t.Fatal("compression flags wrong")
	}
	rng := rand.New(rand.NewSource(42))
	var prios []int64
	for i := 0; i < 500; i++ {
		p := int64(rng.Intn(5000))
		prios = append(prios, p)
		enq(on, NewGEntry(uint64(i)), p)
		enq(off, NewGEntry(uint64(i)), p)
	}
	sort.Slice(prios, func(i, j int) bool { return prios[i] < prios[j] })
	for i, want := range prios {
		_, p1, ok1 := on.Dequeue()
		_, p2, ok2 := off.Dequeue()
		if !ok1 || !ok2 || p1 != want || p2 != want {
			t.Fatalf("drain %d: on=(%d,%v) off=(%d,%v) want %d", i, p1, ok1, p2, ok2, want)
		}
	}
}

func TestTwoLevelStaleResidueCulled(t *testing.T) {
	q := MustTwoLevelPQ(TwoLevelOptions{MaxStep: 100})
	g := NewGEntry(1)
	enq(q, g, 10)
	adj(q, g, 60)
	// The §3.4 protocol inserts-then-deletes, so the old slot may hold a
	// residue; whatever happens, the entry must drain exactly once at its
	// final priority.
	got, p, ok := q.Dequeue()
	if !ok || got.Key != 1 || p != 60 {
		t.Fatalf("Dequeue = (%v,%d,%v), want key1@60", got, p, ok)
	}
	if _, _, ok := q.Dequeue(); ok {
		t.Fatal("entry must not drain twice")
	}
}

func TestQueueConcurrentStress(t *testing.T) {
	for name, q := range queues(t, 1<<16) {
		t.Run(name, func(t *testing.T) {
			const (
				producers = 4
				perP      = 3000
			)
			total := producers * perP
			entries := make([]*GEntry, total)
			for i := range entries {
				entries[i] = NewGEntry(uint64(i))
			}
			var claimed atomic.Int64
			var wg sync.WaitGroup
			done := make(chan struct{})
			// Consumers.
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if g, _, ok := q.Dequeue(); ok {
							if g == nil {
								t.Error("nil entry dequeued")
								return
							}
							claimed.Add(1)
							continue
						}
						select {
						case <-done:
							for {
								if _, _, ok := q.Dequeue(); !ok {
									return
								}
								claimed.Add(1)
							}
						default:
							time.Sleep(100 * time.Microsecond)
						}
					}
				}()
			}
			// Producers enqueue then randomly adjust.
			var pwg sync.WaitGroup
			for p := 0; p < producers; p++ {
				pwg.Add(1)
				go func(p int) {
					defer pwg.Done()
					rng := rand.New(rand.NewSource(int64(p)))
					for i := 0; i < perP; i++ {
						g := entries[p*perP+i]
						prio := int64(rng.Intn(1 << 15))
						g.Mu.Lock()
						q.Enqueue(g, prio)
						g.Mu.Unlock()
						if rng.Intn(3) == 0 {
							g.Mu.Lock()
							if g.InQueue {
								q.AdjustPriority(g, g.Priority, g.Priority+int64(rng.Intn(1000)))
							}
							g.Mu.Unlock()
						}
					}
				}(p)
			}
			pwg.Wait()
			close(done)
			wg.Wait()
			if got := claimed.Load(); got != int64(total) {
				t.Fatalf("claimed %d entries, want exactly %d", got, total)
			}
			if q.Len() != 0 {
				t.Fatalf("Len = %d after drain", q.Len())
			}
		})
	}
}

// Property: for any set of priorities, the queue drains them in
// non-decreasing order with nothing lost or duplicated.
func TestQueueDrainProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		q := MustTwoLevelPQ(TwoLevelOptions{MaxStep: 1 << 16})
		h := NewTreeHeap(len(raw))
		for i, r := range raw {
			enq(q, NewGEntry(uint64(i)), int64(r))
			enq(h, NewGEntry(uint64(i)), int64(r))
		}
		for _, impl := range []Queue{q, h} {
			last := int64(-1)
			n := 0
			for {
				_, p, ok := impl.Dequeue()
				if !ok {
					break
				}
				if p < last {
					return false
				}
				last = p
				n++
			}
			if n != len(raw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- Benchmarks backing Exp #4's real-concurrency claims -------------------

// benchQueueMixed models the P²F access pattern: a shared training-step
// cursor advances, enqueues land within the lookahead window [step,
// step+L], dequeues drain from the front, and the controller raises the
// scan lower bound as steps complete — exactly what WaitForStep does.
func benchQueueMixed(b *testing.B, mk func(maxStep int64) Queue) {
	const L = 10
	maxStep := int64(b.N) + 1<<15
	q := mk(maxStep)
	raiser, _ := q.(interface{ RaiseLowerBound(int64) })
	var step atomic.Int64
	var keys atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(keys.Add(1))))
		for pb.Next() {
			switch rng.Intn(4) {
			case 0, 1:
				g := NewGEntry(keys.Add(1))
				g.Mu.Lock()
				q.Enqueue(g, step.Load()+int64(rng.Intn(L))+1)
				g.Mu.Unlock()
			case 2:
				q.Dequeue()
			case 3:
				// The gate: advance the step cursor (and the scan window)
				// only when the front of the queue has moved past it —
				// exactly WaitForStep's condition.
				s := step.Load()
				if q.Top() > s && s < maxStep-L-2 {
					if step.CompareAndSwap(s, s+1) && raiser != nil {
						raiser.RaiseLowerBound(s + 1)
					}
				}
			}
		}
	})
}

// BenchmarkTwoLevelPQMixed measures the two-level queue under the real
// P²F access pattern (Exp #4's wall-clock counterpart).
func BenchmarkTwoLevelPQMixed(b *testing.B) {
	benchQueueMixed(b, func(maxStep int64) Queue {
		return MustTwoLevelPQ(TwoLevelOptions{MaxStep: maxStep, TableHint: 4096})
	})
}

// BenchmarkTreeHeapMixed is the baseline counterpart.
func BenchmarkTreeHeapMixed(b *testing.B) {
	benchQueueMixed(b, func(int64) Queue { return NewTreeHeap(1 << 16) })
}

// BenchmarkPQScanRangeCompression is the §3.4 ablation: dequeue cost with
// and without the bounded scan, late in a long training run when the
// priority index is huge and live priorities cluster near the end.
func BenchmarkPQScanRangeCompression(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			q := MustTwoLevelPQ(TwoLevelOptions{
				MaxStep: 1 << 20, TableHint: 4096,
				DisableScanCompression: mode.disable,
			})
			base := int64(1<<20 - 4096)
			for i := 0; i < 4096; i++ {
				enq(q, NewGEntry(uint64(i)), base+int64(i%1024))
			}
			// The controller has passed the gate for every step below the
			// window (compression keeps the scan there; the "off" mode
			// must scan the whole index from zero).
			q.RaiseLowerBound(base)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, p, ok := q.Dequeue()
				if !ok {
					b.StopTimer()
					g = NewGEntry(uint64(i))
					p = base + int64(i%1024)
					b.StartTimer()
				}
				g.Mu.Lock()
				q.Enqueue(g, p)
				g.Mu.Unlock()
			}
		})
	}
}

// BenchmarkPQDequeueBatchSize is the batched-dequeue ablation of Fig 7:
// larger batches amortise the priority-index scan.
func BenchmarkPQDequeueBatchSize(b *testing.B) {
	for _, batch := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			q := MustTwoLevelPQ(TwoLevelOptions{MaxStep: 1 << 16, TableHint: 4096})
			for i := 0; i < 8192; i++ {
				enq(q, NewGEntry(uint64(i)), int64(i%1024))
			}
			buf := make([]*GEntry, 0, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = q.DequeueBatch(buf[:0], batch)
				if len(buf) == 0 {
					b.StopTimer()
					for j := 0; j < 8192; j++ {
						enq(q, NewGEntry(uint64(j)), int64(j%1024))
					}
					b.StartTimer()
				}
			}
		})
	}
}
