package pq

import (
	"fmt"
	"sync/atomic"

	"frugal/internal/lfht"
	"frugal/internal/obs"
)

// TwoLevelPQ is Frugal's customised concurrent priority queue (§3.4,
// Fig 7). Level one is a priority index: an array with one slot per
// possible priority value (0 … maxStep, plus one slot for ∞). Each slot
// points to a lock-free hash table holding the g-entries that currently
// carry that priority. All operations are O(1):
//
//   - Enqueue inserts into the slot table for the entry's priority.
//   - AdjustPriority inserts into the new slot first and then deletes from
//     the old one; dequeuers detect the transient duplicate by comparing
//     the entry's current priority with the slot they popped it from.
//   - Dequeue scans the priority index for the first non-empty slot. With
//     scan-range compression (on by default) the scan is restricted to
//     [lower bound, upper bound] ∪ {∞}, where the lower bound is raised to
//     each dequeued priority (a g-entry's priority never decreases) and
//     the upper bound tracks the largest finite priority ever enqueued
//     (≤ current step + lookahead L).
//
// Locking protocol: Enqueue and AdjustPriority require the caller to hold
// g.Mu across the call; this makes the entry's Priority field and its slot
// membership change atomically with respect to dequeuers, which validate
// under the same lock. Dequeue/DequeueBatch/Top take no caller locks.
type TwoLevelPQ struct {
	maxStep int64
	slots   []atomic.Pointer[lfht.Map[*GEntry]]
	hint    int

	count atomic.Int64
	// finite counts live finite-priority entries. It is incremented
	// *before* an entry becomes visible in a finite slot and decremented
	// only after it is claimed (or moved to ∞), so a zero reading proves no
	// finite entry can be hiding below the compressed scan range — the
	// guard that keeps Top's self-healing fallback off the common
	// only-deferred-work path.
	finite atomic.Int64

	// Scan-range compression state (§3.4 optimisation).
	compress bool
	lower    atomic.Int64 // smallest slot a finite-priority entry may occupy
	upper    atomic.Int64 // largest finite priority ever enqueued

	// stalePops counts residue nodes culled during dequeue validation;
	// exposed for tests and the ablation bench.
	stalePops atomic.Int64

	// o mirrors operation counts into the observability layer (nil = off).
	o *obs.PQObs
}

// TwoLevelOptions configures a TwoLevelPQ.
type TwoLevelOptions struct {
	// MaxStep is the largest finite priority value (the number of training
	// steps); the priority index has MaxStep+2 slots.
	MaxStep int64
	// TableHint sizes each slot's hash table (expected concurrent
	// population per priority value).
	TableHint int
	// DisableScanCompression turns the §3.4 scan-range optimisation off
	// (used by the ablation benchmark).
	DisableScanCompression bool
}

// NewTwoLevelPQ builds an empty queue for priorities in [0, MaxStep] ∪ {∞}.
func NewTwoLevelPQ(opt TwoLevelOptions) (*TwoLevelPQ, error) {
	if opt.MaxStep < 0 {
		return nil, fmt.Errorf("pq: negative MaxStep %d", opt.MaxStep)
	}
	if opt.MaxStep > 1<<26 {
		return nil, fmt.Errorf("pq: MaxStep %d too large for a dense priority index", opt.MaxStep)
	}
	hint := opt.TableHint
	if hint <= 0 {
		hint = 1024
	}
	q := &TwoLevelPQ{
		maxStep:  opt.MaxStep,
		slots:    make([]atomic.Pointer[lfht.Map[*GEntry]], opt.MaxStep+2),
		hint:     hint,
		compress: !opt.DisableScanCompression,
	}
	q.upper.Store(-1)
	return q, nil
}

// MustTwoLevelPQ is NewTwoLevelPQ for configurations that cannot fail.
func MustTwoLevelPQ(opt TwoLevelOptions) *TwoLevelPQ {
	q, err := NewTwoLevelPQ(opt)
	if err != nil {
		panic(err)
	}
	return q
}

// SetObserver attaches an observability sink (nil detaches). Call before
// the queue sees traffic.
func (q *TwoLevelPQ) SetObserver(o *obs.PQObs) { q.o = o }

// slotIndex maps a priority to its index in the priority index array.
func (q *TwoLevelPQ) slotIndex(p int64) int64 {
	if p == Inf {
		return q.maxStep + 1
	}
	if p < 0 || p > q.maxStep {
		panic(fmt.Sprintf("pq: priority %d outside [0,%d]∪{∞}", p, q.maxStep))
	}
	return p
}

// table returns the hash table for a slot, creating it on first use.
func (q *TwoLevelPQ) table(idx int64) *lfht.Map[*GEntry] {
	if t := q.slots[idx].Load(); t != nil {
		return t
	}
	fresh := lfht.NewWithHint[*GEntry](q.hint)
	if q.slots[idx].CompareAndSwap(nil, fresh) {
		return fresh
	}
	return q.slots[idx].Load()
}

// peek returns the slot's table without creating it.
func (q *TwoLevelPQ) peek(idx int64) *lfht.Map[*GEntry] {
	return q.slots[idx].Load()
}

// casMin lowers v to x if x is smaller.
func casMin(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x >= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// casMax raises v to x if x is larger.
func casMax(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x <= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Enqueue inserts g under priority p. The caller must hold g.Mu; Enqueue
// sets g.Priority and g.InQueue itself so that slot membership and entry
// state change atomically with respect to dequeuers.
func (q *TwoLevelPQ) Enqueue(g *GEntry, p int64) {
	idx := q.slotIndex(p)
	g.Priority = p
	g.InQueue = true
	if p != Inf {
		q.finite.Add(1)
	}
	q.table(idx).Insert(g.Key, g)
	q.count.Add(1)
	q.o.Enqueue(g.Key)
	if p != Inf {
		casMin(&q.lower, p)
		casMax(&q.upper, p)
	}
}

// AdjustPriority moves g from priority old to new. The caller must hold
// g.Mu. Following §3.4, the entry is inserted into the new slot *before*
// being deleted from the old one so a concurrent dequeuer always finds at
// least one live node; the transient duplicate is culled by validation.
func (q *TwoLevelPQ) AdjustPriority(g *GEntry, old, new int64) {
	if old == new {
		return
	}
	oldIdx, newIdx := q.slotIndex(old), q.slotIndex(new)
	if new != Inf && old == Inf {
		q.finite.Add(1)
	}
	q.table(newIdx).Insert(g.Key, g)
	g.Priority = new
	q.table(oldIdx).Delete(g.Key)
	if new == Inf && old != Inf {
		q.finite.Add(-1)
	}
	q.o.Adjust(g.Key)
	if new != Inf {
		casMin(&q.lower, new)
		casMax(&q.upper, new)
	}
}

// scanBounds returns the inclusive range of finite slots a dequeue scan
// must cover.
func (q *TwoLevelPQ) scanBounds() (lo, hi int64) {
	if q.compress {
		lo, hi = q.lower.Load(), q.upper.Load()
		if lo < 0 {
			lo = 0
		}
		if hi > q.maxStep {
			hi = q.maxStep
		}
		return lo, hi
	}
	return 0, q.maxStep
}

// claim validates a popped candidate under its lock: the pop is good when
// the entry still believes it lives in slot p. Returns false for residue
// nodes left behind by AdjustPriority (or already-claimed entries).
func (q *TwoLevelPQ) claim(g *GEntry, p int64) bool {
	g.Mu.Lock()
	defer g.Mu.Unlock()
	if !g.InQueue || g.Priority != p {
		q.stalePops.Add(1)
		q.o.StalePop(g.Key)
		return false
	}
	g.InQueue = false
	if p != Inf {
		q.finite.Add(-1)
	}
	q.o.Dequeue(g.Key)
	return true
}

// dequeueRange scans finite slots in [lo, hi] and claims the first live
// entry found.
func (q *TwoLevelPQ) dequeueRange(lo, hi int64) (*GEntry, int64, bool) {
	for p := lo; p <= hi; p++ {
		t := q.peek(p)
		if t == nil || t.Empty() {
			continue
		}
		for {
			_, g, ok := t.PopAny()
			if !ok {
				break
			}
			if q.claim(g, p) {
				q.count.Add(-1)
				return g, p, true
			}
		}
	}
	return nil, 0, false
}

// dequeueInf drains one deferred (∞ priority) entry.
func (q *TwoLevelPQ) dequeueInf() (*GEntry, int64, bool) {
	t := q.peek(q.maxStep + 1)
	if t == nil {
		return nil, 0, false
	}
	for {
		_, g, ok := t.PopAny()
		if !ok {
			return nil, 0, false
		}
		if q.claim(g, Inf) {
			q.count.Add(-1)
			return g, Inf, true
		}
	}
}

// Dequeue removes and returns a minimum-priority entry. Finite priorities
// drain before ∞ (deferred updates flush only when nothing urgent is
// pending).
//
// The compressed scan range is a performance hint, not a correctness
// invariant: a concurrent enqueue below the lower bound can race with a
// dequeuer raising it. When the bounded scan and the ∞ slot both come up
// empty while entries remain, Dequeue self-heals with one full-index scan
// and resets the bound it finds.
func (q *TwoLevelPQ) Dequeue() (*GEntry, int64, bool) {
	if q.count.Load() == 0 {
		return nil, 0, false
	}
	lo, hi := q.scanBounds()
	if g, p, ok := q.dequeueRange(lo, hi); ok {
		return g, p, ok
	}
	if g, p, ok := q.dequeueInf(); ok {
		return g, p, ok
	}
	if q.compress && q.count.Load() > 0 {
		// Fallback: an entry may live below the (racy) lower bound.
		casMin(&q.lower, 0)
		return q.dequeueRange(0, q.upper.Load())
	}
	return nil, 0, false
}

// DequeueBatch appends up to max entries to dst in priority order,
// amortising the priority-index scan across the batch (Fig 7's batched
// dequeue).
func (q *TwoLevelPQ) DequeueBatch(dst []*GEntry, max int) []*GEntry {
	if max <= 0 || q.count.Load() == 0 {
		return dst
	}
	taken := 0
	lo, hi := q.scanBounds()
	take := func(from, to int64) {
		for p := from; p <= to && taken < max; p++ {
			t := q.peek(p)
			if t == nil || t.Empty() {
				continue
			}
			for taken < max {
				_, g, ok := t.PopAny()
				if !ok {
					break
				}
				if q.claim(g, p) {
					q.count.Add(-1)
					dst = append(dst, g)
					taken++
				}
			}
		}
	}
	take(lo, hi)
	if t := q.peek(q.maxStep + 1); t != nil {
		for taken < max {
			_, g, ok := t.PopAny()
			if !ok {
				break
			}
			if q.claim(g, Inf) {
				q.count.Add(-1)
				dst = append(dst, g)
				taken++
			}
		}
	}
	if taken == 0 && q.compress && q.count.Load() > 0 {
		// Same self-healing fallback as Dequeue.
		casMin(&q.lower, 0)
		take(0, q.upper.Load())
	}
	return dst
}

// ProcessBatch visits up to max minimum-priority entries in priority
// order, invoking fn on each while its node is still live in the slot
// table — the flush-before-dequeue protocol that keeps the consistency
// gate sound (an urgent entry stays visible to Top until its updates have
// reached host memory). Claimed entries (fn returned true) leave the
// logical count; stale residues are culled for free.
func (q *TwoLevelPQ) ProcessBatch(max int, fn func(g *GEntry, slotPriority int64) bool) int {
	if max <= 0 || q.count.Load() == 0 {
		return 0
	}
	processed := 0
	visit := func(p int64) {
		t := q.peek(q.slotIndex(p))
		if t == nil || t.Empty() {
			return
		}
		processed += t.DrainN(max-processed, func(_ uint64, g *GEntry) {
			g.Mu.Lock()
			claimed := fn(g, p)
			g.Mu.Unlock()
			if claimed {
				q.count.Add(-1)
				if p != Inf {
					q.finite.Add(-1)
				}
				q.o.Dequeue(g.Key)
			} else {
				q.o.StalePop(g.Key)
			}
		})
	}
	lo, hi := q.scanBounds()
	for p := lo; p <= hi && processed < max; p++ {
		visit(p)
	}
	if processed < max {
		visit(Inf)
	}
	if processed == 0 && q.compress && q.count.Load() > 0 {
		// Same self-healing fallback as Dequeue.
		casMin(&q.lower, 0)
		for p := int64(0); p <= q.upper.Load() && processed < max; p++ {
			visit(p)
		}
	}
	return processed
}

// Top returns the smallest finite priority currently in the queue, or Inf
// when only deferred (∞) work remains. A residue node can make Top
// transiently under-report, which is safe for the consistency gate: it
// only blocks training longer, never lets a stale read through.
//
// Over-reporting is the dangerous direction — a Top that misses a live
// finite entry opens the §3.3 gate early, i.e. a stale read. The
// compressed scan range is only a hint: an Enqueue below the lower bound
// can race with a RaiseLowerBound and leave a live entry beneath [lo, hi],
// exactly the race Dequeue/DequeueBatch/ProcessBatch self-heal. Top gets
// the same fallback, guarded by the live finite-entry count: when the
// bounded scan comes up empty while finite entries remain, it resets the
// lower bound and rescans the full index. (The guard is the finite count
// rather than the total count so that the common only-deferred-work state
// — count > 0, everything at ∞ — never pays a full-index scan.)
func (q *TwoLevelPQ) Top() int64 {
	if q.count.Load() == 0 {
		return Inf
	}
	lo, hi := q.scanBounds()
	for p := lo; p <= hi; p++ {
		if t := q.peek(p); t != nil && !t.Empty() {
			return p
		}
	}
	if q.compress && q.finite.Load() > 0 {
		// Same self-healing fallback as Dequeue: a finite-priority entry
		// may live below the (racy) lower bound.
		casMin(&q.lower, 0)
		for p := int64(0); p <= q.upper.Load(); p++ {
			if t := q.peek(p); t != nil && !t.Empty() {
				return p
			}
		}
	}
	return Inf
}

// RaiseLowerBound narrows the dequeue/Top scan range from below (§3.4
// scan-range compression). The caller must guarantee that no current or
// future g-entry can carry a finite priority below p — in P²F this holds
// with p = s+1 once the consistency gate for step s has passed, because
// every read for steps ≤ s has left the read sets by then. Defensive
// casMin in Enqueue/AdjustPriority self-heals if the contract is broken.
func (q *TwoLevelPQ) RaiseLowerBound(p int64) {
	if !q.compress {
		return
	}
	casMax(&q.lower, p)
}

// Len returns the number of claimed-in entries (excludes residues).
func (q *TwoLevelPQ) Len() int { return int(q.count.Load()) }

// StalePops reports how many residue nodes dequeue validation has culled.
func (q *TwoLevelPQ) StalePops() int64 { return q.stalePops.Load() }

// ScanCompressionEnabled reports whether the §3.4 optimisation is active.
func (q *TwoLevelPQ) ScanCompressionEnabled() bool { return q.compress }

var _ Queue = (*TwoLevelPQ)(nil)
