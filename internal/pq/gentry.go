// Package pq implements the priority-queue layer of Frugal's P²F
// algorithm (§3.3-3.4): the per-parameter g-entry metadata, the customised
// two-level concurrent priority queue, and the TreeHeap baseline it is
// evaluated against in Exp #4.
//
// Priorities are training-step numbers: a numerically smaller priority
// must be flushed earlier. Inf marks entries that nothing is waiting for
// (Equation (1): priority = min(R set) when the write set is non-empty,
// and ∞ when the read set or the write set is empty).
package pq

import (
	"fmt"
	"math"
	"sync"
)

// Inf is the priority of a g-entry no upcoming step will read
// (or that has nothing pending to flush).
const Inf int64 = math.MaxInt64

// Update is one pending parameter update: the step that produced it, the
// delta to apply to the host-memory row, and the increment for the row's
// optimizer state (0 for plain SGD; the squared-gradient accumulator
// increment for row-wise Adagrad). Carrying the state increment with the
// update lets the flushing threads apply the optimizer on host memory —
// exactly where Frugal's write path lands.
type Update struct {
	Step       int64
	Delta      []float32
	StateDelta float32
}

// GEntry is the metadata Frugal keeps per parameter (§3.3): the key, the
// read set R (future steps that will access the parameter), the write set W
// (pending updates not yet flushed to host memory), and the cached priority.
//
// All fields are guarded by Mu. The queue implementations never mutate a
// g-entry; the P²F controller locks the entry, updates R/W, recomputes the
// priority, and tells the queue how the priority moved.
type GEntry struct {
	Key uint64

	Mu sync.Mutex
	// R is the read set: step numbers at which the parameter will soon be
	// accessed, ascending order maintained by AddRead.
	R []int64
	// W is the write set: pending updates in step order.
	W []Update
	// Priority caches Equation (1) over the current R/W.
	Priority int64
	// InQueue reports whether the entry currently lives in the priority
	// queue (i.e. it has a non-empty write set).
	InQueue bool
}

// NewGEntry returns a g-entry for key with empty R/W sets and priority ∞.
func NewGEntry(key uint64) *GEntry {
	return &GEntry{Key: key, Priority: Inf}
}

// ComputePriority evaluates Equation (1) on the entry's current sets.
// Callers must hold Mu.
func (g *GEntry) ComputePriority() int64 {
	if len(g.W) == 0 || len(g.R) == 0 {
		return Inf
	}
	return g.R[0]
}

// AddRead inserts step into the read set, keeping it sorted.
// Callers must hold Mu.
func (g *GEntry) AddRead(step int64) {
	i := len(g.R)
	for i > 0 && g.R[i-1] > step {
		i--
	}
	if i > 0 && g.R[i-1] == step {
		return // idempotent: the same step may prefetch a key twice
	}
	g.R = append(g.R, 0)
	copy(g.R[i+1:], g.R[i:])
	g.R[i] = step
}

// RemoveRead deletes step from the read set and reports whether it was
// present. Callers must hold Mu.
func (g *GEntry) RemoveRead(step int64) bool {
	for i, s := range g.R {
		if s == step {
			g.R = append(g.R[:i], g.R[i+1:]...)
			return true
		}
		if s > step {
			break
		}
	}
	return false
}

// AddWrite appends a pending update. Callers must hold Mu.
func (g *GEntry) AddWrite(step int64, delta []float32) {
	g.W = append(g.W, Update{Step: step, Delta: delta})
}

// AddWriteState appends a pending update carrying an optimizer-state
// increment. Callers must hold Mu.
func (g *GEntry) AddWriteState(step int64, delta []float32, stateDelta float32) {
	g.W = append(g.W, Update{Step: step, Delta: delta, StateDelta: stateDelta})
}

// TakeWrites removes and returns all pending updates. Callers must hold Mu.
func (g *GEntry) TakeWrites() []Update {
	w := g.W
	g.W = nil
	return w
}

// FlushedWrites hands the storage of a flushed write set back to the entry
// so future AddWrite calls reuse its capacity instead of growing a fresh
// slice from nil. Callers must have held Mu continuously since the
// TakeWrites that produced w (otherwise concurrent AddWrites may already
// have started a new W) and must be done with w's elements — the delta
// buffers they reference have been applied and returned to their pool.
func (g *GEntry) FlushedWrites(w []Update) {
	if g.W != nil {
		return // defensive: a new write set already exists
	}
	g.W = w[:0]
}

// String renders the entry for debugging, e.g. "g{k=3 R=[1 2] |W|=1 p=1}".
func (g *GEntry) String() string {
	p := "inf"
	if g.Priority != Inf {
		p = fmt.Sprint(g.Priority)
	}
	return fmt.Sprintf("g{k=%d R=%v |W|=%d p=%s}", g.Key, g.R, len(g.W), p)
}

// Queue is the priority-queue contract shared by the two-level PQ and the
// TreeHeap baseline. All methods are safe for concurrent use.
//
// The contract mirrors §3.4: Enqueue inserts a g-entry under a priority,
// Dequeue removes a minimum-priority entry, DequeueBatch amortises the
// scan, AdjustPriority moves an already-queued entry, and Top exposes the
// front priority for the consistency gate (training step s may start only
// when Top() > s).
type Queue interface {
	// Enqueue inserts g under priority p.
	Enqueue(g *GEntry, p int64)
	// Dequeue removes and returns a minimum-priority entry with its
	// priority, or ok=false when the queue is empty.
	Dequeue() (g *GEntry, p int64, ok bool)
	// DequeueBatch appends up to max minimum-priority entries to dst.
	DequeueBatch(dst []*GEntry, max int) []*GEntry
	// AdjustPriority moves g from priority old to priority new.
	AdjustPriority(g *GEntry, old, new int64)
	// ProcessBatch visits up to max minimum-priority entries, calling fn
	// on each BEFORE the entry loses queue visibility, so that Top()
	// keeps gating trainers until fn (the flush) has completed. The
	// queue acquires g.Mu around each fn invocation; fn must validate
	// that g still belongs to slotPriority (g.InQueue && g.Priority ==
	// slotPriority), claim it by clearing g.InQueue, and report whether
	// it did (false culls a stale residue). fn must be idempotent —
	// concurrent processors may visit the same node twice. Returns the
	// number of nodes processed.
	ProcessBatch(max int, fn func(g *GEntry, slotPriority int64) bool) int
	// Top returns the priority at the front of the queue (Inf when empty:
	// an empty queue never blocks training).
	Top() int64
	// Len returns the (approximate under concurrency) number of entries.
	Len() int
}
