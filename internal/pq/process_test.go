package pq

import (
	"sync"
	"sync/atomic"
	"testing"
)

// flushClaim is the p2f flusher's validation protocol, reproduced here to
// test ProcessBatch's contract directly.
func flushClaim(flushed *atomic.Int64) func(g *GEntry, p int64) bool {
	return func(g *GEntry, p int64) bool {
		if !g.InQueue || g.Priority != p {
			return false
		}
		g.InQueue = false
		if len(g.TakeWrites()) > 0 {
			flushed.Add(1)
		}
		return true
	}
}

func TestProcessBatchDrainsInPriorityOrder(t *testing.T) {
	for name, q := range queues(t, 1000) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 30; i++ {
				g := NewGEntry(uint64(i))
				g.Mu.Lock()
				g.AddWrite(0, []float32{1})
				q.Enqueue(g, int64(i))
				g.Mu.Unlock()
			}
			var flushed atomic.Int64
			var order []int64
			n := q.ProcessBatch(10, func(g *GEntry, p int64) bool {
				order = append(order, p)
				g.InQueue = false
				g.TakeWrites()
				return true
			})
			if n != 10 {
				t.Fatalf("processed %d, want 10", n)
			}
			for i, p := range order {
				if p != int64(i) {
					t.Fatalf("priority order broken: %v", order)
				}
			}
			// Rest drains too.
			if rest := q.ProcessBatch(100, flushClaim(&flushed)); rest != 20 {
				t.Fatalf("rest = %d, want 20", rest)
			}
			if q.Len() != 0 {
				t.Fatalf("Len = %d after full drain", q.Len())
			}
		})
	}
}

func TestProcessBatchVisibilityBeforeRemoval(t *testing.T) {
	// The gate-soundness property: while fn runs (the flush), Top() must
	// still see the entry — the queue may not hide it until fn returned.
	q := MustTwoLevelPQ(TwoLevelOptions{MaxStep: 100})
	g := NewGEntry(1)
	g.Mu.Lock()
	g.AddWrite(0, []float32{1})
	q.Enqueue(g, 5)
	g.Mu.Unlock()

	sawDuringFlush := make(chan int64, 1)
	done := make(chan struct{})
	n := q.ProcessBatch(1, func(e *GEntry, p int64) bool {
		// Observe Top from another goroutine mid-flush.
		go func() {
			sawDuringFlush <- q.Top()
			close(done)
		}()
		<-done
		e.InQueue = false
		e.TakeWrites()
		return true
	})
	if n != 1 {
		t.Fatalf("processed %d", n)
	}
	if top := <-sawDuringFlush; top != 5 {
		t.Fatalf("Top during flush = %d, want 5 (entry must stay visible)", top)
	}
	if top := q.Top(); top != Inf {
		t.Fatalf("Top after flush = %d, want Inf", top)
	}
}

func TestProcessBatchCullsResidues(t *testing.T) {
	q := MustTwoLevelPQ(TwoLevelOptions{MaxStep: 100})
	g := NewGEntry(1)
	g.Mu.Lock()
	g.AddWrite(0, []float32{1})
	q.Enqueue(g, 10)
	q.AdjustPriority(g, 10, 40) // may leave a residue in slot 10
	g.Mu.Unlock()
	var flushed atomic.Int64
	total := 0
	for {
		n := q.ProcessBatch(8, flushClaim(&flushed))
		if n == 0 {
			break
		}
		total += n
	}
	if flushed.Load() != 1 {
		t.Fatalf("flushed %d times, want exactly 1", flushed.Load())
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	_ = total
}

func TestProcessBatchConcurrentExactlyOnce(t *testing.T) {
	for name, q := range queues(t, 1<<16) {
		t.Run(name, func(t *testing.T) {
			const entries = 4000
			for i := 0; i < entries; i++ {
				g := NewGEntry(uint64(i))
				g.Mu.Lock()
				g.AddWrite(0, []float32{1})
				q.Enqueue(g, int64(i%1024))
				g.Mu.Unlock()
			}
			var flushed atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					fn := flushClaim(&flushed)
					for {
						if n := q.ProcessBatch(64, fn); n == 0 {
							if q.Len() == 0 {
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			if got := flushed.Load(); got != entries {
				t.Fatalf("flushed %d write sets, want exactly %d", got, entries)
			}
		})
	}
}

func TestProcessBatchEmptyAndZeroMax(t *testing.T) {
	for name, q := range queues(t, 10) {
		t.Run(name, func(t *testing.T) {
			if n := q.ProcessBatch(5, func(*GEntry, int64) bool { return true }); n != 0 {
				t.Fatalf("empty queue processed %d", n)
			}
			enq(q, NewGEntry(1), 3)
			if n := q.ProcessBatch(0, func(*GEntry, int64) bool { return true }); n != 0 {
				t.Fatalf("max=0 processed %d", n)
			}
		})
	}
}
