package stream_test

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frugal/internal/ckpt"
	"frugal/internal/data"
	"frugal/internal/fault"
	"frugal/internal/p2f"
	"frugal/internal/runtime"
	"frugal/internal/serve"
	"frugal/internal/stream"
)

// hotStream wraps a stream.Source so the first `gpus` slots of every
// batch are the hot key — NewMicro shards keys round-robin, so every
// trainer commits exactly one update for the hot key at every step and
// its host version is exactly gpus·steps once everything is flushed.
type hotStream struct {
	src  *stream.Source
	hot  uint64
	gpus int
}

func (h *hotStream) Next() ([]uint64, bool) {
	keys, ok := h.src.Next()
	if !ok {
		return nil, false
	}
	for i := 0; i < h.gpus && i < len(keys); i++ {
		keys[i] = h.hot
	}
	return keys, true
}

func (h *hotStream) Steps() int64 { return h.src.Steps() }
func (h *hotStream) Batch() int   { return h.src.Batch() }

// latSample is one timed read against the follower.
type latSample struct {
	at  time.Time
	lat time.Duration
}

// TestChaosStreamFailover is the -race acceptance test of the streaming
// subsystem: a continuously trained job under open-loop load, the delta
// log cut live off the flush stream, a follower tailing it, a fault plan
// killing a flusher mid-stream — and then the primary itself dying. It
// asserts:
//
//   - the staleness contract holds throughout on both primary and
//     follower: every admitted bounded(k) read reports staleness ≤ k and
//     a row version ≥ G·(watermark+1−staleness), and the hot version
//     never regresses per reader;
//   - training never stops for the log: the max gap between consecutive
//     completed steps stays far below a stop-the-world pause;
//   - after the primary dies the follower promotes, serves fresh reads
//     at staleness 0, and its hot row shows every committed update
//     (version == G·steps);
//   - the compacted base plus the sealed segments reconstruct a slab
//     bit-identical to Save of the primary's final host state;
//   - compaction ran (the log is incremental, not an ever-growing tail).
func TestChaosStreamFailover(t *testing.T) {
	const (
		gpus  = 2
		rowsN = 128
		dim   = 8
		batch = 32
		hot   = uint64(3)
		bound = int64(2)
		// Follower reads tolerate more lag: replication adds sweep
		// latency on top of the gate bound.
		flBound = int64(64)
	)
	dir := t.TempDir()

	src, err := stream.New(stream.Options{
		Rate: 6000, Batch: batch, Keys: rowsN,
		Distribution: data.DistZipf09, Seed: 7, Horizon: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("crash:flusher=0@batch=3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := runtime.Config{
		Engine: runtime.EngineFrugal, NumGPUs: gpus, Rows: rowsN, Dim: dim,
		CacheRatio: 0.25, Seed: 7, CheckConsistency: true, FlushThreads: 3,
		Faults: fault.NewInjector(plan),
		Recovery: p2f.Recovery{
			HeartbeatInterval: time.Millisecond,
			StallTimeout:      50 * time.Millisecond,
		},
	}
	// No stop-the-world: watch the gap between consecutive completed
	// steps while the delta log is cut alongside.
	var lastStep, maxGap atomic.Int64
	lastStep.Store(time.Now().UnixNano())
	cfg.OnStep = func(runtime.StepStats) {
		now := time.Now().UnixNano()
		prev := lastStep.Swap(now)
		if gap := now - prev; gap > maxGap.Load() {
			maxGap.Store(gap)
		}
	}
	job, err := runtime.NewMicro(cfg, &hotStream{src: src, hot: hot, gpus: gpus}, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ckpt.NewWriter(job.Host(), job.Controller(), ckpt.Options{
		Dir: dir, SweepInterval: 15 * time.Millisecond, CompactEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	job.Controller().AddFlushHook(w.OnFlush)

	peng, err := serve.New(job.Host(), job.Controller(), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := serve.NewFollower(dir, serve.FollowerOptions{Poll: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	flCtx, stopTail := context.WithCancel(context.Background())
	defer stopTail()
	tailDone := make(chan error, 1)
	go func() { tailDone <- fl.Run(flCtx) }()

	var (
		wg          sync.WaitGroup
		primaryDown = make(chan struct{})
		flDone      = make(chan struct{})
		ctx         = context.Background()
	)
	// Primary readers: bounded reads of the hot key while the trainer,
	// the flusher crash and the log writer all run.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			dst := make([]float32, dim)
			var lastVer uint64
			for {
				select {
				case <-primaryDown:
					return
				default:
				}
				resp, err := peng.Query(ctx, serve.Request{Key: hot, Dst: dst, Level: serve.Bounded(bound)})
				if err != nil {
					t.Errorf("primary reader %d: %v", r, err)
					return
				}
				m := resp.Meta
				if m.Staleness > bound {
					t.Errorf("primary reader %d: staleness %d over bound %d", r, m.Staleness, bound)
					return
				}
				if floor := m.Watermark + 1 - m.Staleness; floor > 0 && m.Version < gpus*uint64(floor) {
					t.Errorf("primary reader %d: version %d < %d·(wm %d + 1 − lag %d)",
						r, m.Version, gpus, m.Watermark, m.Staleness)
					return
				}
				if m.Version < lastVer {
					t.Errorf("primary reader %d: version regressed %d → %d", r, lastVer, m.Version)
					return
				}
				lastVer = m.Version
			}
		}(r)
	}
	// Follower reader: the same contract over the replica, plus the
	// latency timeline the recovery-p99 report is cut from. A read can
	// honestly exceed the bound right after a resync; it must never
	// *lie* (admit with meta violating the inequality).
	samples := make([]latSample, 0, 4096)
	wg.Add(1)
	go func() {
		defer wg.Done()
		dst := make([]float32, dim)
		var lastVer uint64
		var tooStale *serve.ErrTooStale
		for {
			select {
			case <-flDone:
				return
			default:
			}
			start := time.Now()
			resp, err := fl.Engine().Query(ctx, serve.Request{Key: hot, Dst: dst, Level: serve.Bounded(flBound)})
			samples = append(samples, latSample{at: start, lat: time.Since(start)})
			if err != nil {
				if errors.As(err, &tooStale) {
					continue // honest refusal while replication lags
				}
				t.Errorf("follower reader: %v", err)
				return
			}
			m := resp.Meta
			if m.Staleness > flBound {
				t.Errorf("follower reader: staleness %d over bound %d", m.Staleness, flBound)
				return
			}
			if floor := m.Watermark + 1 - m.Staleness; floor > 0 && m.Version < gpus*uint64(floor) {
				t.Errorf("follower reader: version %d < %d·(wm %d + 1 − lag %d)",
					m.Version, gpus, m.Watermark, m.Staleness)
				return
			}
			if m.Version < lastVer {
				t.Errorf("follower reader: version regressed %d → %d", lastVer, m.Version)
				return
			}
			lastVer = m.Version
		}
	}()

	// Run the primary; kill it mid-stream (the event source dies, the
	// job drains and exits — the crash half of the failover drill).
	resC := make(chan runtime.Result, 1)
	errC := make(chan error, 1)
	go func() {
		res, err := job.Run()
		resC <- res
		errC <- err
	}()
	time.Sleep(1200 * time.Millisecond)
	killedAt := time.Now()
	src.Close()
	res, runErr := <-resC, <-errC
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.Steps < 20 {
		t.Fatalf("only %d steps before the kill; the open-loop source is not driving training", res.Steps)
	}
	close(primaryDown)
	// The primary is gone: seal what its flush stream produced (the
	// writer's final sweep captures the drained host state) and promote
	// the follower.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fl.Promote(); err != nil {
		t.Fatal(err)
	}
	promotedAt := time.Now()
	close(flDone)
	stopTail()
	if err := <-tailDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("follower tail: %v", err)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Promotion: the follower is authoritative — fresh reads at
	// staleness 0, the hot row carrying every committed update.
	st := fl.Stats()
	if st.Role != "primary" {
		t.Fatalf("follower role %q after promotion, want primary", st.Role)
	}
	dst := make([]float32, dim)
	resp, err := fl.Engine().Query(ctx, serve.Request{Key: hot, Dst: dst, Level: serve.Fresh()})
	if err != nil {
		t.Fatalf("fresh read on promoted replica: %v", err)
	}
	if resp.Meta.Staleness != 0 {
		t.Fatalf("promoted replica reports staleness %d, want 0", resp.Meta.Staleness)
	}
	if want := uint64(gpus) * uint64(res.Steps); resp.Meta.Version != want {
		t.Fatalf("promoted hot version %d, want %d (= %d GPUs × %d steps)",
			resp.Meta.Version, want, gpus, res.Steps)
	}

	// Bit-identity: base + sealed segments reconstruct the primary's
	// final slab exactly.
	rec, err := ckpt.Reconstruct(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := job.Host().Save(&want); err != nil {
		t.Fatal(err)
	}
	if err := rec.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("reconstructed slab differs from the primary's final state (%d vs %d bytes)",
			got.Len(), want.Len())
	}

	ws := w.Stats()
	if ws.Compactions < 1 {
		t.Fatalf("no compaction in %d segments (CompactEvery 8): the log never folded", ws.Segments)
	}
	if res.Recovery.FaultsInjected == 0 || res.Recovery.FlusherCrashes != 1 {
		t.Fatalf("fault plan did not run: %+v", res.Recovery)
	}
	// The log is cut live: a stop-the-world pause would show up as a
	// multi-second gap between consecutive completed steps.
	if gap := time.Duration(maxGap.Load()); gap > 2*time.Second {
		t.Fatalf("max step gap %v: delta checkpointing stalled training", gap)
	}

	// Recovery report: read latency through the kill → promotion window.
	var rec99 []time.Duration
	for _, s := range samples {
		if s.at.After(killedAt) && s.at.Before(promotedAt) {
			rec99 = append(rec99, s.lat)
		}
	}
	if len(rec99) > 0 {
		sort.Slice(rec99, func(i, j int) bool { return rec99[i] < rec99[j] })
		t.Logf("recovery window %v (kill → promotion): %d follower reads, p99 %v",
			promotedAt.Sub(killedAt), len(rec99), rec99[(len(rec99)-1)*99/100])
	}
	t.Logf("steps %d, events %d, backlog at kill %d, log: %d segments / %d records / %d compactions, max step gap %v",
		res.Steps, src.Emitted(), src.Backlog(), ws.Segments, ws.Records, ws.Compactions,
		time.Duration(maxGap.Load()))
}
