// Package stream turns training into a continuous process: an unbounded
// event source — clicks, edges, interactions arriving at a configured
// rate — grouped into fixed-size batches that drive the existing step
// loop through the runtime.KeyTrace surface. There is no train/serve
// phase split: the job trains for as long as events keep arriving (or
// until the horizon), and the delta-checkpoint log (internal/ckpt) plus
// serve followers ride alongside.
package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"frugal/internal/data"
)

// Options shapes a Source.
type Options struct {
	// Rate is the event arrival rate per second. The arrival process is
	// open-loop: events accumulate at this rate no matter how fast the
	// trainer consumes them (Backlog reports the gap). ≤ 0 removes the
	// pacing entirely — batches are handed out as fast as they are asked
	// for (tests, benchmarks).
	Rate float64
	// Batch is the events per global training step (default 256).
	Batch int
	// Keys is the key space (required).
	Keys uint64
	// Distribution draws the event keys (default zipf-0.9).
	Distribution data.Distribution
	// Seed makes the event stream reproducible.
	Seed int64
	// Horizon caps the stream's length in steps (default 1<<20). The P²F
	// priority queue is sized for the step horizon up front, so a
	// continuous job runs in bounded horizons; restart the job to renew.
	Horizon int64
}

func (o *Options) normalize() error {
	if o.Batch <= 0 {
		o.Batch = 256
	}
	if o.Keys == 0 {
		return fmt.Errorf("stream: Options.Keys is required")
	}
	if o.Distribution == "" {
		o.Distribution = data.DistZipf09
	}
	if o.Horizon <= 0 {
		o.Horizon = 1 << 20
	}
	return nil
}

// Source is an unbounded, rate-paced event source implementing
// runtime.KeyTrace: Next blocks until the next batch of events has
// "arrived" (or returns false once closed / past the horizon). Next is
// called by the job's single trace consumer; Close, Emitted and Backlog
// are safe from any goroutine.
type Source struct {
	opt Options
	gen data.KeyGen

	startOnce sync.Once
	startNano atomic.Int64

	produced int64 // batches handed out (trace-consumer goroutine only)
	emitted  atomic.Int64

	closed    chan struct{}
	closeOnce sync.Once
}

// New builds a Source.
func New(opt Options) (*Source, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	gen, err := data.NewGen(opt.Distribution, opt.Seed, opt.Keys)
	if err != nil {
		return nil, err
	}
	return &Source{opt: opt, gen: gen, closed: make(chan struct{})}, nil
}

// Next returns the next batch of event keys, blocking until the arrival
// process has produced them. It returns false when the source is closed
// or the horizon is reached. The returned slice is freshly allocated —
// the runtime retains it for the step's lifetime.
func (s *Source) Next() ([]uint64, bool) {
	select {
	case <-s.closed:
		return nil, false
	default:
	}
	if s.produced >= s.opt.Horizon {
		return nil, false
	}
	s.startOnce.Do(func() { s.startNano.Store(time.Now().UnixNano()) })
	if s.opt.Rate > 0 {
		// Batch n is complete once n+1 batches' worth of events have
		// arrived. Waiting against the absolute schedule (not a relative
		// sleep) keeps the arrival process open-loop: a slow consumer
		// builds backlog instead of slowing arrivals down.
		due := time.Unix(0, s.startNano.Load()).
			Add(time.Duration(float64(s.produced+1) * float64(s.opt.Batch) / s.opt.Rate * float64(time.Second)))
		if wait := time.Until(due); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-s.closed:
				t.Stop()
				return nil, false
			case <-t.C:
			}
		}
	}
	keys := make([]uint64, s.opt.Batch)
	for i := range keys {
		keys[i] = s.gen.Next()
	}
	s.produced++
	s.emitted.Add(int64(len(keys)))
	return keys, true
}

// Steps returns the horizon (runtime.KeyTrace).
func (s *Source) Steps() int64 { return s.opt.Horizon }

// Batch returns the events per step (runtime.KeyTrace).
func (s *Source) Batch() int { return s.opt.Batch }

// Close ends the stream: the next (or a blocked) Next returns false and
// the job winds down through its normal epilogue. Idempotent.
func (s *Source) Close() { s.closeOnce.Do(func() { close(s.closed) }) }

// Emitted reports events handed to the trainer so far.
func (s *Source) Emitted() int64 { return s.emitted.Load() }

// Backlog estimates the open-loop arrival backlog in events: how many
// have arrived (by wall clock) but not yet been consumed. 0 for unpaced
// sources.
func (s *Source) Backlog() int64 {
	if s.opt.Rate <= 0 {
		return 0
	}
	start := s.startNano.Load()
	if start == 0 {
		return 0
	}
	arrived := int64(s.opt.Rate * time.Since(time.Unix(0, start)).Seconds())
	if max := s.opt.Horizon * int64(s.opt.Batch); arrived > max {
		arrived = max
	}
	if b := arrived - s.emitted.Load(); b > 0 {
		return b
	}
	return 0
}
