package stream_test

import (
	"testing"
	"time"

	"frugal/internal/stream"
)

func TestSourceUnpaced(t *testing.T) {
	src, err := stream.New(stream.Options{Batch: 8, Keys: 100, Seed: 3, Horizon: 5})
	if err != nil {
		t.Fatal(err)
	}
	if src.Batch() != 8 || src.Steps() != 5 {
		t.Fatalf("batch %d steps %d, want 8/5", src.Batch(), src.Steps())
	}
	for i := 0; i < 5; i++ {
		keys, ok := src.Next()
		if !ok || len(keys) != 8 {
			t.Fatalf("batch %d: ok=%v len=%d", i, ok, len(keys))
		}
		for _, k := range keys {
			if k >= 100 {
				t.Fatalf("key %d outside the key space", k)
			}
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source ran past its horizon")
	}
	if src.Emitted() != 40 {
		t.Fatalf("emitted %d events, want 40", src.Emitted())
	}
}

func TestSourceReproducible(t *testing.T) {
	mk := func() []uint64 {
		src, err := stream.New(stream.Options{Batch: 16, Keys: 1000, Seed: 9, Horizon: 4})
		if err != nil {
			t.Fatal(err)
		}
		var all []uint64
		for {
			keys, ok := src.Next()
			if !ok {
				return all
			}
			all = append(all, keys...)
		}
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at event %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSourcePacing(t *testing.T) {
	// 1000 events/s in 50-event batches: one batch per 50ms of arrival.
	src, err := stream.New(stream.Options{Rate: 1000, Batch: 50, Keys: 100, Seed: 1, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("batch %d: source closed early", i)
		}
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("4 batches at 1000 ev/s arrived in %v: the open loop is not pacing", el)
	}
	// The arrival process is open-loop: not consuming for a while builds
	// backlog.
	time.Sleep(120 * time.Millisecond)
	if src.Backlog() <= 0 {
		t.Fatalf("backlog %d after an idle consumer, want > 0", src.Backlog())
	}
}

func TestSourceCloseUnblocksNext(t *testing.T) {
	// 1 ev/s with 8-event batches: the first batch would take 8s.
	src, err := stream.New(stream.Options{Rate: 1, Batch: 8, Keys: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		src.Close()
	}()
	start := time.Now()
	if _, ok := src.Next(); ok {
		t.Fatal("Next succeeded on a closed source")
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("Next took %v to observe Close", el)
	}
}

func TestSourceOptionErrors(t *testing.T) {
	if _, err := stream.New(stream.Options{Batch: 8}); err == nil {
		t.Fatal("missing key space accepted")
	}
	if _, err := stream.New(stream.Options{Keys: 10, Distribution: "bogus"}); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}
