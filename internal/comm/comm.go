// Package comm implements the functional side of multi-GPU embedding
// communication: shard ownership, key bucketing and deduplication, and the
// exchange plans behind the all_to_all collectives of message-based
// systems (Fig 2b: ➊ bucket keys, ➋ all_to_all keys, ➍ all_to_all
// embeddings, ➎ reorder). The time cost of executing a plan on a given
// machine comes from internal/hw; this package only decides *what* moves.
package comm

import "fmt"

// Owner returns the GPU that owns key under the sharding placement used by
// HugeCTR-style caches and by Frugal (§5: "Frugal pertains to a sharding
// policy in essence"). The key is mixed first so that contiguous key
// ranges spread evenly.
func Owner(key uint64, numGPUs int) int {
	if numGPUs <= 0 {
		panic(fmt.Sprintf("comm: numGPUs must be positive, got %d", numGPUs))
	}
	h := key
	h ^= h >> 31
	h *= 0x7fb5d329728ea185
	h ^= h >> 27
	return int(h % uint64(numGPUs))
}

// Plan describes one all_to_all exchange from the perspective of a single
// rank: which unique keys it must request from every peer (including the
// local rank at index Rank).
type Plan struct {
	Rank int
	// Need[r] lists the unique keys this rank needs from rank r's cache
	// shard. Need[Rank] is the local-shard portion.
	Need [][]uint64
}

// BuildPlan buckets one rank's batch keys by owner and deduplicates them —
// step ➊ of Fig 2b. The same key occurring twice in a batch is requested
// once.
func BuildPlan(rank, numGPUs int, batchKeys []uint64) Plan {
	p := Plan{Rank: rank, Need: make([][]uint64, numGPUs)}
	seen := make(map[uint64]struct{}, len(batchKeys))
	for _, k := range batchKeys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		o := Owner(k, numGPUs)
		p.Need[o] = append(p.Need[o], k)
	}
	return p
}

// LocalKeys returns the keys served by the local shard.
func (p Plan) LocalKeys() []uint64 { return p.Need[p.Rank] }

// RemoteKeyCount returns how many unique keys must come from other ranks.
func (p Plan) RemoteKeyCount() int {
	n := 0
	for r, keys := range p.Need {
		if r != p.Rank {
			n += len(keys)
		}
	}
	return n
}

// UniqueKeyCount returns the total number of unique keys in the plan.
func (p Plan) UniqueKeyCount() int {
	n := 0
	for _, keys := range p.Need {
		n += len(keys)
	}
	return n
}

// KeyExchangeBytes returns the payload of the forward key all_to_all
// (step ➋): 8 bytes per remote key, in each direction.
func (p Plan) KeyExchangeBytes() int64 { return int64(p.RemoteKeyCount()) * 8 }

// EmbExchangeBytes returns the payload of the embedding all_to_all
// (step ➍ forward, and its mirror-image gradient exchange in backward):
// one dim×4-byte row per remote key.
func (p Plan) EmbExchangeBytes(dim int) int64 {
	return int64(p.RemoteKeyCount()) * int64(dim) * 4
}

// Dedup returns the unique keys of a batch, preserving first-occurrence
// order, plus the index mapping from original positions to unique
// positions (the ➎ reorder table).
func Dedup(keys []uint64) (unique []uint64, index []int) {
	pos := make(map[uint64]int, len(keys))
	index = make([]int, len(keys))
	for i, k := range keys {
		if j, ok := pos[k]; ok {
			index[i] = j
			continue
		}
		j := len(unique)
		pos[k] = j
		unique = append(unique, k)
		index[i] = j
	}
	return unique, index
}

// ShardBatch splits a global batch across numGPUs ranks sample-wise
// (data-parallel): rank r gets samples r, r+n, r+2n, … Each sample is a
// fixed-width group of `keysPerSample` keys.
func ShardBatch(batchKeys []uint64, keysPerSample, numGPUs, rank int) []uint64 {
	if keysPerSample <= 0 {
		panic(fmt.Sprintf("comm: keysPerSample must be positive, got %d", keysPerSample))
	}
	samples := len(batchKeys) / keysPerSample
	var out []uint64
	for s := rank; s < samples; s += numGPUs {
		out = append(out, batchKeys[s*keysPerSample:(s+1)*keysPerSample]...)
	}
	return out
}
