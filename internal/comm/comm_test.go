package comm

import (
	"testing"
	"testing/quick"
)

func TestOwnerBalanced(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	for k := uint64(0); k < 80000; k++ {
		o := Owner(k, n)
		if o < 0 || o >= n {
			t.Fatalf("Owner(%d) = %d out of range", k, o)
		}
		counts[o]++
	}
	for r, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("rank %d owns %d of 80000 keys — imbalanced", r, c)
		}
	}
}

func TestOwnerDeterministic(t *testing.T) {
	for k := uint64(0); k < 100; k++ {
		if Owner(k, 4) != Owner(k, 4) {
			t.Fatal("Owner must be deterministic")
		}
	}
}

func TestOwnerPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Owner(1, 0)
}

func TestBuildPlanDedupsAndBuckets(t *testing.T) {
	keys := []uint64{1, 2, 1, 3, 2, 4}
	p := BuildPlan(0, 4, keys)
	if got := p.UniqueKeyCount(); got != 4 {
		t.Fatalf("unique = %d, want 4", got)
	}
	if p.RemoteKeyCount()+len(p.LocalKeys()) != 4 {
		t.Fatal("remote+local must equal unique")
	}
	// Every key bucketed to its owner.
	for r, bucket := range p.Need {
		for _, k := range bucket {
			if Owner(k, 4) != r {
				t.Fatalf("key %d in bucket %d but owned by %d", k, r, Owner(k, 4))
			}
		}
	}
}

func TestPlanByteAccounting(t *testing.T) {
	keys := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	p := BuildPlan(1, 4, keys)
	remote := p.RemoteKeyCount()
	if got := p.KeyExchangeBytes(); got != int64(remote)*8 {
		t.Fatalf("KeyExchangeBytes = %d", got)
	}
	if got := p.EmbExchangeBytes(32); got != int64(remote)*128 {
		t.Fatalf("EmbExchangeBytes = %d", got)
	}
}

func TestDedup(t *testing.T) {
	unique, index := Dedup([]uint64{5, 7, 5, 9, 7})
	if len(unique) != 3 || unique[0] != 5 || unique[1] != 7 || unique[2] != 9 {
		t.Fatalf("unique = %v", unique)
	}
	want := []int{0, 1, 0, 2, 1}
	for i := range want {
		if index[i] != want[i] {
			t.Fatalf("index = %v, want %v", index, want)
		}
	}
}

func TestDedupProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		unique, index := Dedup(keys)
		if len(index) != len(keys) {
			return false
		}
		// Reconstruction through the index must reproduce the input.
		for i, k := range keys {
			if unique[index[i]] != k {
				return false
			}
		}
		// No duplicates in unique.
		seen := map[uint64]bool{}
		for _, k := range unique {
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShardBatch(t *testing.T) {
	// 6 samples × 2 keys, 3 GPUs → each rank gets 2 samples.
	batch := []uint64{0, 1, 10, 11, 20, 21, 30, 31, 40, 41, 50, 51}
	all := map[uint64]int{}
	for r := 0; r < 3; r++ {
		shard := ShardBatch(batch, 2, 3, r)
		if len(shard) != 4 {
			t.Fatalf("rank %d shard len = %d, want 4", r, len(shard))
		}
		for _, k := range shard {
			all[k]++
		}
	}
	// Every key assigned exactly once across ranks.
	if len(all) != len(batch) {
		t.Fatalf("sharding lost keys: %d of %d", len(all), len(batch))
	}
	for k, c := range all {
		if c != 1 {
			t.Fatalf("key %d assigned %d times", k, c)
		}
	}
}

func TestShardBatchPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ShardBatch([]uint64{1}, 0, 2, 0)
}
