package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func topo(t *testing.T, spec GPUSpec, n int) *Topology {
	t.Helper()
	tp, err := NewTopology(spec, n, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestSpecByName(t *testing.T) {
	for _, want := range Specs() {
		got, err := SpecByName(want.Name)
		if err != nil {
			t.Fatalf("SpecByName(%q): %v", want.Name, err)
		}
		if got != want {
			t.Fatalf("SpecByName(%q) = %+v", want.Name, got)
		}
	}
	if _, err := SpecByName("H100"); err == nil {
		t.Fatal("expected error for unknown GPU")
	}
}

func TestTable1CostPerformanceRatio(t *testing.T) {
	// Table 1: RTX 4090 dollar-per-TFLOPS is ~18-19% of A100's, i.e. the
	// cost-performance ratio of the 4090 is ~5.4x the A100's.
	r4090 := RTX4090.DollarPerFP32TFLOPS()
	rA100 := A100.DollarPerFP32TFLOPS()
	ratio := rA100 / r4090
	if ratio < 4.8 || ratio > 6.0 {
		t.Fatalf("A100/4090 $-per-TFLOPS ratio = %.2f, want ~5.4", ratio)
	}
}

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology(A30, 0, DefaultParams()); err == nil {
		t.Fatal("expected error for 0 GPUs")
	}
	p := DefaultParams()
	p.RootComplexGBps = 0
	if _, err := NewTopology(A30, 4, p); err == nil {
		t.Fatal("expected error for zero root-complex bandwidth")
	}
}

func TestP2PRequiresCapability(t *testing.T) {
	commodity := topo(t, RTX3090, 4)
	if _, err := commodity.P2PCopy(1<<20, 1); err == nil {
		t.Fatal("RTX 3090 must not support P2P")
	}
	dc := topo(t, A30, 4)
	if _, err := dc.P2PCopy(1<<20, 1); err != nil {
		t.Fatalf("A30 P2P: %v", err)
	}
}

func TestBouncedSlowerThanP2P(t *testing.T) {
	dc := topo(t, A30, 4)
	p2p, err := dc.P2PCopy(64<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	bounced := dc.BouncedCopy(64<<20, 1)
	if bounced <= p2p {
		t.Fatalf("bounced copy (%.6f) should be slower than P2P (%.6f)", bounced, p2p)
	}
	// GPUCopy picks the right path per class.
	if got := dc.GPUCopy(64<<20, 1); got != p2p {
		t.Fatalf("datacenter GPUCopy = %v, want P2P time %v", got, p2p)
	}
	commodity := topo(t, RTX3090, 4)
	if got := commodity.GPUCopy(64<<20, 1); got != commodity.BouncedCopy(64<<20, 1) {
		t.Fatal("commodity GPUCopy must take the bounced path")
	}
}

func TestFig3bCommodityAllToAllFraction(t *testing.T) {
	// Fig 3b: commodity all_to_all bandwidth is ~54% of datacenter's at
	// large transfer sizes (both on the same PCIe 4.0 link).
	dc := topo(t, A30, 4)
	com := topo(t, RTX3090, 4)
	size := int64(100 << 20)
	frac := com.AllToAllBandwidth(size) / dc.AllToAllBandwidth(size)
	if frac < 0.45 || frac > 0.65 {
		t.Fatalf("commodity/datacenter all_to_all fraction = %.2f, want ~0.54", frac)
	}
}

func TestAllToAllBandwidthRisesWithSize(t *testing.T) {
	tp := topo(t, RTX3090, 4)
	small := tp.AllToAllBandwidth(1 << 20)
	large := tp.AllToAllBandwidth(100 << 20)
	if large <= small {
		t.Fatalf("bandwidth should rise with size: 1MB=%.3f 100MB=%.3f", small, large)
	}
}

func TestAllToAllSingleGPUFree(t *testing.T) {
	tp := topo(t, RTX3090, 1)
	if d := tp.AllToAll(1 << 20); d != 0 {
		t.Fatalf("single-GPU all_to_all should cost 0, got %v", d)
	}
}

func TestFig10UVAFasterThanCPUGather(t *testing.T) {
	// Fig 10 / Exp #3: UVA-enabled access lowers host-memory query latency
	// by 3.1-3.4x vs the CPU-involved path.
	tp := topo(t, RTX3090, 4)
	const rowBytes = 128 // dim 32 x float32
	for _, batch := range []int{512, 1024, 2048} {
		cpu := tp.CPUGather(batch, rowBytes, 1)
		uva, err := tp.UVAGather(batch, rowBytes, 1)
		if err != nil {
			t.Fatal(err)
		}
		ratio := cpu / uva
		if ratio < 2.5 || ratio > 4.5 {
			t.Fatalf("batch %d: CPU/UVA latency ratio = %.2f, want ~3.1-3.4", batch, ratio)
		}
	}
}

func TestUVARequiresCapability(t *testing.T) {
	// All catalog parts support UVA-to-host; a hypothetical part without it
	// must error.
	noUVA := RTX3090
	noUVA.UVAToHost = false
	tp := MustTopology(noUVA, 2, DefaultParams())
	if _, err := tp.UVAGather(10, 128, 1); err == nil {
		t.Fatal("expected UVA capability error")
	}
}

func TestUVMOrdersOfMagnitudeSlower(t *testing.T) {
	// §4.2: UVM's 4KB page granularity vs ~512B embeddings causes huge
	// amplification; the paper reports two orders of magnitude slowdown.
	tp := topo(t, RTX3090, 4)
	const rowBytes = 128
	uva, err := tp.UVAGather(1024, rowBytes, 1)
	if err != nil {
		t.Fatal(err)
	}
	uvm := tp.UVMFetch(1024, rowBytes, 1)
	if uvm < 20*uva {
		t.Fatalf("UVM (%.6f) should be >>20x slower than UVA (%.6f)", uvm, uva)
	}
}

func TestUVMLargeRowFaultsMultiplePages(t *testing.T) {
	tp := topo(t, RTX3090, 1)
	small := tp.UVMFetch(10, 4096, 1)
	big := tp.UVMFetch(10, 8192, 1)
	if big < 1.9*small {
		t.Fatalf("8KB rows should fault ~2x the pages: small=%v big=%v", small, big)
	}
}

func TestRootComplexContention(t *testing.T) {
	// With enough concurrent flows the root complex, not the link, binds.
	tp := topo(t, RTX3090, 8)
	one := tp.DMA(64<<20, 1)
	eight := tp.DMA(64<<20, 8)
	if eight <= one {
		t.Fatalf("8-flow DMA (%v) should be slower than 1-flow (%v)", eight, one)
	}
	// Two flows still fit within per-link limits (2*27 < 78 GB/s agg).
	two := tp.DMA(64<<20, 2)
	if two != one {
		t.Fatalf("2 flows should not yet contend: one=%v two=%v", one, two)
	}
}

func TestComputeScalesWithFlops(t *testing.T) {
	tp := topo(t, RTX3090, 1)
	small := tp.Compute(1e6)
	large := tp.Compute(1e9)
	if large <= small {
		t.Fatal("more flops must take longer")
	}
	// A30 has faster FP32 than 3090: same flops should be quicker.
	dc := topo(t, A30, 1)
	if dc.Compute(1e9) >= tp.Compute(1e9) {
		t.Fatal("A30 compute should beat RTX 3090 at FP32")
	}
}

func TestHostWriteThreadScaling(t *testing.T) {
	tp := topo(t, RTX3090, 8)
	one := tp.HostWrite(100000, 128, 1)
	four := tp.HostWrite(100000, 128, 4)
	if four >= one {
		t.Fatalf("4 flusher threads (%v) should beat 1 (%v)", four, one)
	}
	// Eventually DRAM bandwidth binds and more threads stop helping.
	t64 := tp.HostWrite(100000, 128, 64)
	t128 := tp.HostWrite(100000, 128, 128)
	if t128 < t64*0.999 {
		t.Fatalf("DRAM-bound flushing should not keep scaling: 64=%v 128=%v", t64, t128)
	}
}

func TestCostsArePositiveAndMonotonic(t *testing.T) {
	tp := topo(t, RTX3090, 4)
	f := func(kb uint16, rows uint16) bool {
		bytes := int64(kb)*1024 + 1
		r := int(rows) + 1
		costs := []float64{
			tp.DMA(bytes, 1),
			tp.BouncedCopy(bytes, 1),
			tp.AllToAll(bytes),
			tp.CPUGather(r, 128, 1),
			tp.CacheAccess(r, 128),
			tp.UVMFetch(r, 128, 1),
			tp.HostWrite(r, 128, 8),
			tp.Compute(float64(r) * 1000),
		}
		for _, c := range costs {
			if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return false
			}
		}
		// Monotonic in size.
		return tp.DMA(2*bytes, 1) >= tp.DMA(bytes, 1) &&
			tp.CPUGather(2*r, 128, 1) >= tp.CPUGather(r, 128, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if Datacenter.String() != "datacenter" || Commodity.String() != "commodity" {
		t.Fatal("class string mismatch")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class should still print")
	}
}
