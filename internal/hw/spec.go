// Package hw models the hardware substrate the paper evaluates on: GPUs
// (datacenter and commodity), PCIe 4.0 links, the CPU root complex, host
// memory, and the capability differences that drive Frugal's design — PCIe
// peer-to-peer support and the (restricted) Unified Virtual Addressing
// feature.
//
// The model is analytic and runs on virtual time: every primitive returns
// the number of simulated seconds it would take, derived from the published
// bandwidth/latency/TFLOPS characteristics (Table 1 of the paper) plus a
// small set of calibration constants. The point of the model is to
// reproduce the *relative* behaviour the paper measures — no-P2P traffic
// bouncing through host memory, root-complex saturation, the latency gap
// between CPU-involved copies and UVA zero-copy reads — not cycle accuracy.
package hw

import "fmt"

// Class distinguishes datacenter parts (NVLink/P2P capable) from commodity
// parts (no P2P, restricted UVA).
type Class int

const (
	// Datacenter GPUs (A100, A30): PCIe P2P, full UVA, optional NVLink.
	Datacenter Class = iota
	// Commodity GPUs (RTX 3090/4090): no P2P; UVA only towards host memory.
	Commodity
)

func (c Class) String() string {
	switch c {
	case Datacenter:
		return "datacenter"
	case Commodity:
		return "commodity"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// GPUSpec describes one GPU model. Numbers follow Table 1 of the paper and
// the public spec sheets for the parts the evaluation uses (A30, RTX 3090).
type GPUSpec struct {
	Name  string
	Class Class

	FP16TFLOPS float64 // tensor FP16 throughput
	FP32TFLOPS float64 // tensor FP32 throughput

	MemGB     float64 // device memory capacity
	MemBWGBps float64 // device memory bandwidth
	LinkGBps  float64 // unidirectional host-link bandwidth (PCIe or NVLink)
	NVLink    bool    // true when the link column is NVLink, not PCIe
	PCIeP2P   bool    // PCIe peer-to-peer supported
	UVAToPeer bool    // UVA load/store into *other GPUs'* memory
	UVAToHost bool    // UVA load/store into host memory
	PriceUSD  float64
}

// DollarPerFP32TFLOPS is the cost-performance metric of Table 1.
func (g GPUSpec) DollarPerFP32TFLOPS() float64 {
	if g.FP32TFLOPS == 0 {
		return 0
	}
	return g.PriceUSD / g.FP32TFLOPS
}

// Catalog of the GPUs the paper discusses. Prices are the ones the paper
// quotes (Table 1 for A100/4090, §4.5 for A30/3090).
var (
	A100 = GPUSpec{
		Name: "A100", Class: Datacenter,
		FP16TFLOPS: 312, FP32TFLOPS: 156,
		MemGB: 80, MemBWGBps: 2039, LinkGBps: 900, NVLink: true,
		PCIeP2P: true, UVAToPeer: true, UVAToHost: true,
		PriceUSD: 16000,
	}
	A30 = GPUSpec{
		Name: "A30", Class: Datacenter,
		FP16TFLOPS: 165, FP32TFLOPS: 82,
		MemGB: 24, MemBWGBps: 933, LinkGBps: 32, NVLink: false,
		PCIeP2P: true, UVAToPeer: true, UVAToHost: true,
		PriceUSD: 5885,
	}
	RTX3090 = GPUSpec{
		Name: "RTX 3090", Class: Commodity,
		FP16TFLOPS: 142, FP32TFLOPS: 35.6,
		MemGB: 24, MemBWGBps: 936, LinkGBps: 32, NVLink: false,
		PCIeP2P: false, UVAToPeer: false, UVAToHost: true,
		PriceUSD: 1310,
	}
	RTX4090 = GPUSpec{
		Name: "RTX 4090", Class: Commodity,
		FP16TFLOPS: 330, FP32TFLOPS: 83,
		MemGB: 24, MemBWGBps: 1008, LinkGBps: 64, NVLink: false,
		PCIeP2P: false, UVAToPeer: false, UVAToHost: true,
		PriceUSD: 1600,
	}
)

// Specs returns the catalog in Table 1 / evaluation order.
func Specs() []GPUSpec { return []GPUSpec{A100, RTX4090, A30, RTX3090} }

// SpecByName looks a GPU up by its catalog name.
func SpecByName(name string) (GPUSpec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return GPUSpec{}, fmt.Errorf("hw: unknown GPU %q", name)
}
