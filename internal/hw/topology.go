package hw

import "fmt"

// Params holds the calibration constants of the analytic cost model. The
// defaults are tuned so that the motivation experiments of the paper
// (Fig 3a-c, Fig 10) come out with the published ratios; every experiment
// runner uses DefaultParams unless it is explicitly studying one of these
// knobs.
type Params struct {
	// PCIeEfficiency scales nominal link bandwidth to achievable DMA
	// bandwidth (protocol + TLP overhead).
	PCIeEfficiency float64
	// CollectiveEfficiency scales achievable bandwidth down to what an
	// all_to_all software collective actually delivers on a PCIe tree
	// (synchronisation, chunking, imperfect overlap).
	CollectiveEfficiency float64
	// BounceFactor is the effective traffic multiplier of a GPU→host→GPU
	// bounced transfer relative to a direct P2P one. A perfect
	// store-and-forward bounce costs 2.0; pipelining the two hops
	// recovers part of it.
	BounceFactor float64
	// DMALatency is the fixed cost of one cudaMemcpy-style DMA operation
	// (driver call + engine programming), seconds.
	DMALatency float64
	// KernelLatency is the fixed launch cost of one GPU kernel, seconds.
	KernelLatency float64
	// CollectiveLatency is the fixed software cost of one collective
	// message exchanged between a pair of ranks, seconds.
	CollectiveLatency float64
	// CPUMissFixed is the fixed CPU software cost of servicing one batch
	// of cache misses through the CPU-involved path (request marshalling,
	// thread wakeups), seconds.
	CPUMissFixed float64
	// CPUMissPerKey is the per-key CPU software cost of the CPU-involved
	// miss path (hash lookup, gather into the staging buffer), seconds.
	CPUMissPerKey float64
	// UVALatency is the fixed cost of a UVA zero-copy gather kernel,
	// seconds.
	UVALatency float64
	// UVARandomBWGBps is the achievable bandwidth of fine-grained random
	// UVA reads from host memory (PCIe non-prefetchable read efficiency
	// with massive GPU thread-level parallelism), GB/s.
	UVARandomBWGBps float64
	// HostMemGBps is aggregate host DRAM bandwidth, GB/s.
	HostMemGBps float64
	// RootComplexGBps is the aggregate bandwidth of the CPU root complex
	// shared by all GPU links, GB/s.
	RootComplexGBps float64
	// HostCopyGBps is the bandwidth of a CPU memcpy into the bounce /
	// staging buffer, GB/s (single threaded-ish driver copies).
	HostCopyGBps float64
	// ComputeEfficiency scales peak TFLOPS to delivered TFLOPS for the
	// small dense kernels of embedding models.
	ComputeEfficiency float64
	// UVMPageBytes is the migration granularity of CUDA Unified Virtual
	// Memory (PyTorch-UVM baseline), bytes.
	UVMPageBytes int64
	// UVMFaultLatency is the cost of one UVM page fault, seconds.
	UVMFaultLatency float64
	// FlushCPUPerRow is the CPU software cost for one flusher thread to
	// apply a single embedding update into host memory, seconds.
	FlushCPUPerRow float64
}

// DefaultParams returns the calibrated model constants.
func DefaultParams() Params {
	return Params{
		PCIeEfficiency:       0.85,
		CollectiveEfficiency: 0.17,
		BounceFactor:         1.82,
		DMALatency:           12e-6,
		KernelLatency:        8e-6,
		CollectiveLatency:    22e-6,
		CPUMissFixed:         25e-6,
		CPUMissPerKey:        51e-9,
		UVALatency:           11e-6,
		UVARandomBWGBps:      5.3,
		HostMemGBps:          105,
		RootComplexGBps:      78,
		HostCopyGBps:         11,
		ComputeEfficiency:    0.30,
		UVMPageBytes:         4096,
		UVMFaultLatency:      20e-6,
		FlushCPUPerRow:       260e-9,
	}
}

// Topology is a single server with NumGPUs identical GPUs hanging off one
// CPU root complex, each on its own PCIe link — the testbed of §4.1 (and,
// with a datacenter spec, the A30 comparison box of Exp #9).
type Topology struct {
	GPU     GPUSpec
	NumGPUs int
	P       Params
}

// NewTopology builds a topology and validates its shape.
func NewTopology(gpu GPUSpec, numGPUs int, p Params) (*Topology, error) {
	if numGPUs < 1 {
		return nil, fmt.Errorf("hw: need at least 1 GPU, got %d", numGPUs)
	}
	if p.RootComplexGBps <= 0 || p.HostMemGBps <= 0 {
		return nil, fmt.Errorf("hw: non-positive bandwidth in params")
	}
	return &Topology{GPU: gpu, NumGPUs: numGPUs, P: p}, nil
}

// MustTopology is NewTopology for static configurations that cannot fail.
func MustTopology(gpu GPUSpec, numGPUs int, p Params) *Topology {
	t, err := NewTopology(gpu, numGPUs, p)
	if err != nil {
		panic(err)
	}
	return t
}

const gb = 1e9

// linkBW returns the achievable unidirectional bandwidth of one GPU link in
// bytes/second.
func (t *Topology) linkBW() float64 {
	return t.GPU.LinkGBps * gb * t.P.PCIeEfficiency
}

// sharedLinkBW returns the per-flow bandwidth when `flows` concurrent flows
// traverse the root complex, in bytes/second: each flow gets its own link
// bandwidth unless the aggregate root-complex bandwidth is the binding
// constraint. This is the mechanism behind the Exp #8 scaling knee.
func (t *Topology) sharedLinkBW(flows int) float64 {
	if flows < 1 {
		flows = 1
	}
	link := t.linkBW()
	agg := t.P.RootComplexGBps * gb / float64(flows)
	if agg < link {
		return agg
	}
	return link
}

// DMA returns the time for one DMA copy of n bytes between a GPU and host
// memory while `flows` such flows are concurrently active.
func (t *Topology) DMA(bytes int64, flows int) float64 {
	return t.P.DMALatency + float64(bytes)/t.sharedLinkBW(flows)
}

// P2PCopy returns the time to move n bytes directly between two GPUs.
// Only legal on P2P-capable parts; commodity GPUs must use BouncedCopy.
func (t *Topology) P2PCopy(bytes int64, flows int) (float64, error) {
	if !t.GPU.PCIeP2P {
		return 0, fmt.Errorf("hw: %s does not support PCIe P2P", t.GPU.Name)
	}
	return t.P.DMALatency + float64(bytes)/t.sharedLinkBW(flows), nil
}

// BouncedCopy returns the time to move n bytes from one GPU to another via
// a host-memory bounce buffer — the only GPU→GPU path on commodity parts.
// The data crosses the root complex twice (partially pipelined) and the CPU
// performs a staging copy.
func (t *Topology) BouncedCopy(bytes int64, flows int) float64 {
	wire := float64(bytes) * t.P.BounceFactor / t.sharedLinkBW(2*flows)
	staging := float64(bytes) / (t.P.HostCopyGBps * gb)
	return 2*t.P.DMALatency + wire + staging
}

// GPUCopy returns the time to move n bytes GPU→GPU using the best path the
// part supports: P2P when available, bounced otherwise.
func (t *Topology) GPUCopy(bytes int64, flows int) float64 {
	if t.GPU.PCIeP2P {
		d, _ := t.P2PCopy(bytes, flows)
		return d
	}
	return t.BouncedCopy(bytes, flows)
}

// AllToAll returns the time of one all_to_all collective in which each of
// the NumGPUs ranks contributes perRankBytes (so each rank sends
// perRankBytes*(n-1)/n to its peers). This is the communication primitive
// of message-based multi-GPU embedding caches (Fig 2b steps 2 and 4).
func (t *Topology) AllToAll(perRankBytes int64) float64 {
	n := t.NumGPUs
	if n <= 1 {
		return 0
	}
	send := float64(perRankBytes) * float64(n-1) / float64(n)
	bw := t.sharedLinkBW(n) * t.P.CollectiveEfficiency
	lat := t.P.CollectiveLatency * float64(n-1)
	if t.GPU.PCIeP2P {
		return lat + send/bw
	}
	// No P2P: every byte bounces on host memory — the root complex sees
	// (almost) double traffic and the CPU performs the staging copies.
	wire := send * t.P.BounceFactor / bw
	staging := send / (t.P.HostCopyGBps * gb)
	return lat + wire + staging
}

// AllToAllBandwidth reports the algorithm bandwidth (perRankBytes / time) of
// one all_to_all, in GB/s — the metric of Fig 3b.
func (t *Topology) AllToAllBandwidth(perRankBytes int64) float64 {
	d := t.AllToAll(perRankBytes)
	if d == 0 {
		return 0
	}
	return float64(perRankBytes) / d / gb
}

// CPUGather returns the time for the CPU-involved cache-miss path: the GPU
// ships keys up, CPU software gathers rows from host memory into a staging
// buffer, and the result is DMA-ed back down (Fig 2b steps 1 and 5, and the
// left bars of Fig 10).
func (t *Topology) CPUGather(rows int, rowBytes int64, flows int) float64 {
	bytes := int64(rows) * rowBytes
	cpu := t.P.CPUMissFixed + float64(rows)*t.P.CPUMissPerKey
	gather := float64(bytes) / (t.P.HostMemGBps * gb)
	staging := float64(bytes) / (t.P.HostCopyGBps * gb)
	dma := t.DMA(bytes, flows)
	return cpu + gather + staging + dma
}

// UVAGather returns the time for a UVA zero-copy gather of `rows` rows
// straight from host memory inside one GPU kernel — no CPU involvement, no
// staging copies (the right bars of Fig 10). Returns an error when the part
// cannot address host memory.
func (t *Topology) UVAGather(rows int, rowBytes int64, flows int) (float64, error) {
	if !t.GPU.UVAToHost {
		return 0, fmt.Errorf("hw: %s does not support UVA to host memory", t.GPU.Name)
	}
	bytes := float64(rows) * float64(rowBytes)
	bw := t.P.UVARandomBWGBps * gb
	if shared := t.sharedLinkBW(flows); shared < bw {
		bw = shared
	}
	return t.P.UVALatency + bytes/bw, nil
}

// UVMFetch returns the time for the PyTorch-UVM baseline to fault in `rows`
// embedding rows: every touched row drags a whole UVMPageBytes page across
// the link (§4.2 — the reason UVM is two orders of magnitude slower).
func (t *Topology) UVMFetch(rows int, rowBytes int64, flows int) float64 {
	if rowBytes > t.P.UVMPageBytes {
		// A row spanning multiple pages faults each page.
		pages := (rowBytes + t.P.UVMPageBytes - 1) / t.P.UVMPageBytes
		rows *= int(pages)
	}
	bytes := int64(rows) * t.P.UVMPageBytes
	return float64(rows)*t.P.UVMFaultLatency + float64(bytes)/t.sharedLinkBW(flows)
}

// CacheAccess returns the time for one GPU to read/write `rows` rows in its
// own device-memory cache (hash probe + row copy at device bandwidth).
func (t *Topology) CacheAccess(rows int, rowBytes int64) float64 {
	// Hash-table probing is random access: derate device bandwidth.
	bw := t.GPU.MemBWGBps * gb * 0.25
	return t.P.KernelLatency + float64(rows)*float64(rowBytes)*2/bw
}

// Compute returns the time for `flops` floating-point operations of dense
// DNN work on one GPU.
func (t *Topology) Compute(flops float64) float64 {
	return t.P.KernelLatency + flops/(t.GPU.FP32TFLOPS*1e12*t.P.ComputeEfficiency)
}

// HostWrite returns the time for flusher threads on the CPU to apply
// `rows` embedding updates of rowBytes each into host memory, with
// `threads` flushing threads working in parallel. Throughput scales with
// thread count until host DRAM bandwidth binds. Used by the virtual-time
// flusher pool (§3.4, Exp #10).
func (t *Topology) HostWrite(rows int, rowBytes int64, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	// Per-row software cost (dequeue bookkeeping aside — that is the
	// priority queue's cost, accounted separately by the simulator).
	cpu := float64(rows) * t.P.FlushCPUPerRow / float64(threads)
	// Read-modify-write of the parameter row against host DRAM.
	bytes := float64(rows) * float64(rowBytes) * 2
	mem := bytes / (t.P.HostMemGBps * gb * 0.6) // random-access derating
	if cpu > mem {
		return cpu
	}
	return mem
}
