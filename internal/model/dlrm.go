package model

import (
	"fmt"
	"math/rand"

	"frugal/internal/tensor"
)

// DLRM is the Facebook Deep Learning Recommendation Model of §4.1: an
// embedding layer (one dim-32 vector per categorical feature) whose
// vectors are sum-pooled and fed to a fully connected top net
// (512-512-256-1 by default). The embedding rows live outside the model —
// in the multi-GPU cache / host-memory hierarchy — and are passed in per
// batch; TrainBatch returns the gradient for every row so the runtime can
// route it through the P²F commit path.
type DLRM struct {
	features int
	dim      int
	top      *MLP
	scratch  *Scratch
	pooled   []float32
	dPooled  []float32
}

// NewDLRM builds a DLRM for `features` categorical features with
// embedding dimension dim. hidden lists the top-MLP hidden layer sizes;
// nil uses the paper's 512-512-256.
func NewDLRM(rng *rand.Rand, features, dim int, hidden []int) (*DLRM, error) {
	if features <= 0 || dim <= 0 {
		return nil, fmt.Errorf("model: invalid DLRM shape features=%d dim=%d", features, dim)
	}
	if hidden == nil {
		hidden = []int{512, 512, 256}
	}
	dims := append([]int{dim}, hidden...)
	dims = append(dims, 1)
	top, err := NewMLP(rng, dims...)
	if err != nil {
		return nil, err
	}
	return &DLRM{
		features: features,
		dim:      dim,
		top:      top,
		scratch:  top.NewScratch(),
		pooled:   make([]float32, dim),
		dPooled:  make([]float32, dim),
	}, nil
}

// Features returns the categorical feature count.
func (d *DLRM) Features() int { return d.features }

// Dim returns the embedding dimension.
func (d *DLRM) Dim() int { return d.dim }

// MLP exposes the top net (examples inspect it; tests gradient-check it).
func (d *DLRM) MLP() *MLP { return d.top }

// Flops estimates forward+backward floating point work per sample.
func (d *DLRM) Flops() float64 {
	return d.top.Flops() + float64(d.features*d.dim)*4 // pooling fwd+bwd
}

// ForwardSample scores one sample from its gathered embedding rows
// (len = features), returning the click logit.
func (d *DLRM) ForwardSample(embs [][]float32) float32 {
	if len(embs) != d.features {
		panic(fmt.Sprintf("model: sample has %d embeddings, want %d", len(embs), d.features))
	}
	tensor.Zero(d.pooled)
	for _, e := range embs {
		tensor.Axpy(1, e, d.pooled)
	}
	return d.top.Forward(d.pooled, d.scratch)
}

// TrainBatch runs forward+backward over a batch and returns the mean BCE
// loss. embs holds batch×features gathered rows (sample-major, matching
// data.RECBatch.Keys); embGrads receives ∂loss/∂row in the same layout
// (buffers provided by the caller, overwritten here). The top MLP is
// updated in place with one SGD step; embedding gradients are returned for
// the runtime to commit through its cache/flush path.
// When preds is non-nil (length = batch) it receives the per-sample click
// probabilities, for AUC tracking.
func (d *DLRM) TrainBatch(embs [][]float32, labels []float32, embGrads [][]float32, preds []float32, lr float32) (float32, error) {
	batch := len(labels)
	if len(embs) != batch*d.features || len(embGrads) != len(embs) {
		return 0, fmt.Errorf("model: batch shape mismatch: embs=%d grads=%d labels=%d features=%d",
			len(embs), len(embGrads), batch, d.features)
	}
	if preds != nil && len(preds) != batch {
		return 0, fmt.Errorf("model: preds buffer has %d slots, want %d", len(preds), batch)
	}
	var totalLoss float32
	for i := 0; i < batch; i++ {
		sample := embs[i*d.features : (i+1)*d.features]
		logit := d.ForwardSample(sample)
		if preds != nil {
			preds[i] = tensor.SigmoidScalar(logit)
		}
		loss, dLogit := BCELoss(logit, labels[i])
		totalLoss += loss
		dIn := d.top.Backward(dLogit, d.scratch)
		// Sum pooling: every feature row receives the same upstream grad.
		copy(d.dPooled, dIn)
		for f := 0; f < d.features; f++ {
			g := embGrads[i*d.features+f]
			if len(g) != d.dim {
				return 0, fmt.Errorf("model: grad buffer %d has dim %d, want %d", i*d.features+f, len(g), d.dim)
			}
			copy(g, d.dPooled)
		}
	}
	d.top.Step(lr, batch)
	return totalLoss / float32(batch), nil
}
