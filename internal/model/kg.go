package model

import (
	"fmt"
	"math"

	"frugal/internal/tensor"
)

// TripleModel scores knowledge-graph triples (h, r, t) on their embedding
// vectors. The four implementations are the Exp #11 graph-embedding
// models: TransE, DistMult, ComplEx and SimplE. Entity and relation
// vectors share one dimension d (complex/role-split models interpret the
// halves internally).
type TripleModel interface {
	Name() string
	// Score returns the plausibility of the triple (higher = more
	// plausible).
	Score(h, r, t []float32) float32
	// ScoreGrad accumulates coef·∂Score/∂{h,r,t} into gh, gr, gt and
	// returns the score. Any gradient buffer may be nil to skip it.
	ScoreGrad(h, r, t []float32, coef float32, gh, gr, gt []float32) float32
}

// ----------------------------------------------------------------------

// TransE scores by translation: γ − ‖h + r − t‖₁ (Bordes et al., the §4.1
// KG model with γ the margin).
type TransE struct{ Gamma float32 }

// NewTransE returns TransE with the given margin (0 → 12, a common DGL-KE
// default).
func NewTransE(gamma float32) *TransE {
	if gamma <= 0 {
		gamma = 12
	}
	return &TransE{Gamma: gamma}
}

// Name returns "TransE".
func (m *TransE) Name() string { return "TransE" }

// Score implements TripleModel.
func (m *TransE) Score(h, r, t []float32) float32 {
	var d float32
	for i := range h {
		x := h[i] + r[i] - t[i]
		if x < 0 {
			x = -x
		}
		d += x
	}
	return m.Gamma - d
}

// ScoreGrad implements TripleModel.
func (m *TransE) ScoreGrad(h, r, t []float32, coef float32, gh, gr, gt []float32) float32 {
	var d float32
	for i := range h {
		x := h[i] + r[i] - t[i]
		var s float32
		if x > 0 {
			s, d = 1, d+x
		} else if x < 0 {
			s, d = -1, d-x
		}
		// ∂score/∂h_i = -sign(x); ∂/∂r_i = -sign(x); ∂/∂t_i = +sign(x).
		if gh != nil {
			gh[i] -= coef * s
		}
		if gr != nil {
			gr[i] -= coef * s
		}
		if gt != nil {
			gt[i] += coef * s
		}
	}
	return m.Gamma - d
}

// ----------------------------------------------------------------------

// DistMult scores with a trilinear product: Σᵢ hᵢ rᵢ tᵢ (Yang et al.).
type DistMult struct{}

// Name returns "DistMult".
func (DistMult) Name() string { return "DistMult" }

// Score implements TripleModel.
func (DistMult) Score(h, r, t []float32) float32 {
	var s float32
	for i := range h {
		s += h[i] * r[i] * t[i]
	}
	return s
}

// ScoreGrad implements TripleModel.
func (DistMult) ScoreGrad(h, r, t []float32, coef float32, gh, gr, gt []float32) float32 {
	var s float32
	for i := range h {
		s += h[i] * r[i] * t[i]
		if gh != nil {
			gh[i] += coef * r[i] * t[i]
		}
		if gr != nil {
			gr[i] += coef * h[i] * t[i]
		}
		if gt != nil {
			gt[i] += coef * h[i] * r[i]
		}
	}
	return s
}

// ----------------------------------------------------------------------

// ComplEx embeds in ℂ^{d/2} (first half real parts, second half imaginary)
// and scores with Re(Σ h r t̄) (Trouillon et al.). Dimensions must be even.
type ComplEx struct{}

// Name returns "ComplEx".
func (ComplEx) Name() string { return "ComplEx" }

// Score implements TripleModel.
func (ComplEx) Score(h, r, t []float32) float32 {
	half := len(h) / 2
	var s float32
	for i := 0; i < half; i++ {
		hr, hi := h[i], h[half+i]
		rr, ri := r[i], r[half+i]
		tr, ti := t[i], t[half+i]
		s += hr*rr*tr + hi*ri*tr + hr*ri*ti - hi*rr*ti
	}
	return s
}

// ScoreGrad implements TripleModel.
func (ComplEx) ScoreGrad(h, r, t []float32, coef float32, gh, gr, gt []float32) float32 {
	half := len(h) / 2
	var s float32
	for i := 0; i < half; i++ {
		hr, hi := h[i], h[half+i]
		rr, ri := r[i], r[half+i]
		tr, ti := t[i], t[half+i]
		s += hr*rr*tr + hi*ri*tr + hr*ri*ti - hi*rr*ti
		if gh != nil {
			gh[i] += coef * (rr*tr + ri*ti)
			gh[half+i] += coef * (ri*tr - rr*ti)
		}
		if gr != nil {
			gr[i] += coef * (hr*tr - hi*ti)
			gr[half+i] += coef * (hi*tr + hr*ti)
		}
		if gt != nil {
			gt[i] += coef * (hr*rr + hi*ri)
			gt[half+i] += coef * (hr*ri - hi*rr)
		}
	}
	return s
}

// ----------------------------------------------------------------------

// SimplE splits every entity vector into head-role and tail-role halves
// and every relation into forward and inverse halves, scoring
// ½(⟨h_head, r_fwd, t_tail⟩ + ⟨t_head, r_inv, h_tail⟩) (Kazemi & Poole).
// Dimensions must be even.
type SimplE struct{}

// Name returns "SimplE".
func (SimplE) Name() string { return "SimplE" }

// Score implements TripleModel.
func (SimplE) Score(h, r, t []float32) float32 {
	half := len(h) / 2
	var s float32
	for i := 0; i < half; i++ {
		s += h[i]*r[i]*t[half+i] + t[i]*r[half+i]*h[half+i]
	}
	return s / 2
}

// ScoreGrad implements TripleModel.
func (SimplE) ScoreGrad(h, r, t []float32, coef float32, gh, gr, gt []float32) float32 {
	half := len(h) / 2
	c := coef / 2
	var s float32
	for i := 0; i < half; i++ {
		s += h[i]*r[i]*t[half+i] + t[i]*r[half+i]*h[half+i]
		if gh != nil {
			gh[i] += c * r[i] * t[half+i]
			gh[half+i] += c * t[i] * r[half+i]
		}
		if gr != nil {
			gr[i] += c * h[i] * t[half+i]
			gr[half+i] += c * t[i] * h[half+i]
		}
		if gt != nil {
			gt[half+i] += c * h[i] * r[i]
			gt[i] += c * r[half+i] * h[half+i]
		}
	}
	return s / 2
}

// ----------------------------------------------------------------------

// KGModels returns the Exp #11 model sweep, in figure order.
func KGModels(gamma float32) []TripleModel {
	return []TripleModel{ComplEx{}, DistMult{}, SimplE{}, NewTransE(gamma)}
}

// KGModelByName resolves one of the four graph-embedding models.
func KGModelByName(name string) (TripleModel, error) {
	switch name {
	case "TransE":
		return NewTransE(0), nil
	case "DistMult":
		return DistMult{}, nil
	case "ComplEx":
		return ComplEx{}, nil
	case "SimplE":
		return SimplE{}, nil
	default:
		return nil, fmt.Errorf("model: unknown KG model %q", name)
	}
}

func softplus(x float32) float32 {
	if x > 30 {
		return x
	}
	return float32(math.Log1p(math.Exp(float64(x))))
}

// TrainTriple computes the logistic loss of one positive triple against a
// set of negative tails (the DGL-KE negative-sampling objective) and
// accumulates ∂loss/∂vector into the provided gradient buffers (gnegs
// parallel to negs; any buffer may be nil). It returns the loss.
func TrainTriple(m TripleModel, h, r, t []float32, negs [][]float32,
	gh, gr, gt []float32, gnegs [][]float32) float32 {

	// Positive term: softplus(-score); ∂/∂score = -σ(-score).
	s := m.Score(h, r, t)
	loss := softplus(-s)
	m.ScoreGrad(h, r, t, -tensor.SigmoidScalar(-s), gh, gr, gt)

	// Negative terms: mean of softplus(score'); ∂/∂score' = σ(score')/K.
	if len(negs) > 0 {
		k := float32(len(negs))
		for i, tn := range negs {
			var gn []float32
			if gnegs != nil {
				gn = gnegs[i]
			}
			sn := m.Score(h, r, tn)
			loss += softplus(sn) / k
			m.ScoreGrad(h, r, tn, tensor.SigmoidScalar(sn)/k, gh, gr, gn)
		}
	}
	return loss
}
