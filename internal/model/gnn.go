package model

import (
	"fmt"

	"frugal/internal/tensor"
)

// GNNScorer is a shallow GraphSAGE-style link predictor operating purely
// on node embeddings: a node's representation is the mean of its own
// embedding and its sampled neighbors' mean, and an edge (u, v) scores by
// the inner product of the two representations. All gradients flow into
// the embedding rows — the memory-intensive regime Frugal targets.
//
//	repr(x)  = ½·e_x + ½·mean(e_n for n in nbrs(x))
//	score    = ⟨repr(u), repr(v)⟩
//	loss     = BCE(σ(score), label)
type GNNScorer struct {
	dim    int
	fanout int
	ru, rv []float32
}

// NewGNNScorer builds a scorer for embeddings of the given dimension and
// neighbor fan-out.
func NewGNNScorer(dim, fanout int) (*GNNScorer, error) {
	if dim <= 0 || fanout <= 0 {
		return nil, fmt.Errorf("model: invalid GNN shape dim=%d fanout=%d", dim, fanout)
	}
	return &GNNScorer{dim: dim, fanout: fanout,
		ru: make([]float32, dim), rv: make([]float32, dim)}, nil
}

// Dim returns the embedding dimension.
func (g *GNNScorer) Dim() int { return g.dim }

// Fanout returns the expected neighbor count per node.
func (g *GNNScorer) Fanout() int { return g.fanout }

// repr computes dst = ½ self + ½ mean(nbrs).
func (g *GNNScorer) repr(self []float32, nbrs [][]float32, dst []float32) {
	inv := 0.5 / float32(len(nbrs))
	for i := range dst {
		dst[i] = 0.5 * self[i]
	}
	for _, n := range nbrs {
		tensor.Axpy(inv, n, dst)
	}
}

// Score computes the link logit of (u, v) given their embeddings and
// sampled neighbor embeddings (each of length fanout).
func (g *GNNScorer) Score(u []float32, uNbrs [][]float32, v []float32, vNbrs [][]float32) float32 {
	g.repr(u, uNbrs, g.ru)
	g.repr(v, vNbrs, g.rv)
	return tensor.Dot(g.ru, g.rv)
}

// TrainPair runs one labelled pair through forward+backward, accumulating
// ∂loss/∂embedding into the gradient buffers (gu/gv for the endpoints,
// guN/gvN parallel to the neighbor lists; any may be nil to skip) and
// returning the BCE loss.
func (g *GNNScorer) TrainPair(label float32,
	u []float32, uNbrs [][]float32, v []float32, vNbrs [][]float32,
	gu []float32, guN [][]float32, gv []float32, gvN [][]float32) float32 {

	logit := g.Score(u, uNbrs, v, vNbrs)
	loss, dLogit := BCELoss(logit, label)
	// ∂score/∂repr(u) = repr(v) and vice versa; ∂repr/∂self = ½,
	// ∂repr/∂neighbor = ½/fanout.
	g.accumulate(dLogit, g.rv, gu, guN, len(uNbrs))
	g.accumulate(dLogit, g.ru, gv, gvN, len(vNbrs))
	return loss
}

func (g *GNNScorer) accumulate(dLogit float32, other []float32,
	gSelf []float32, gNbrs [][]float32, fan int) {
	if gSelf != nil {
		tensor.Axpy(0.5*dLogit, other, gSelf)
	}
	if gNbrs != nil {
		c := 0.5 * dLogit / float32(fan)
		for _, gn := range gNbrs {
			if gn != nil {
				tensor.Axpy(c, other, gn)
			}
		}
	}
}
