package model

import (
	"math"
	"math/rand"
	"testing"

	"frugal/internal/tensor"
)

func TestNewMLPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMLP(rng, 8); err == nil {
		t.Fatal("single-dim MLP should error")
	}
	if _, err := NewMLP(rng, 8, 0, 1); err == nil {
		t.Fatal("zero dim should error")
	}
	m, err := NewMLP(rng, 32, 512, 512, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Layers() != 4 || m.InDim() != 32 || m.OutDim() != 1 {
		t.Fatalf("shape: layers=%d in=%d out=%d", m.Layers(), m.InDim(), m.OutDim())
	}
	if m.Flops() <= 0 {
		t.Fatal("Flops must be positive")
	}
}

func TestMLPForwardDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, _ := NewMLP(rng, 4, 8, 1)
	s := m.NewScratch()
	x := []float32{1, -2, 3, 0.5}
	a := m.Forward(x, s)
	b := m.Forward(x, s)
	if a != b {
		t.Fatalf("same input → different logits: %v vs %v", a, b)
	}
}

func TestMLPInputDimPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, _ := NewMLP(rng, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Forward([]float32{1}, m.NewScratch())
}

// TestMLPGradientCheck verifies the analytic input gradient against finite
// differences of the loss.
func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := NewMLP(rng, 6, 10, 5, 1)
	s := m.NewScratch()
	x := make([]float32, 6)
	tensor.UniformInit(rng, x, 1)
	label := float32(1)

	lossAt := func(x []float32) float64 {
		logit := m.Forward(x, s)
		loss, _ := BCELoss(logit, label)
		return float64(loss)
	}
	logit := m.Forward(x, s)
	_, dLogit := BCELoss(logit, label)
	analytic := append([]float32{}, m.Backward(dLogit, s)...)
	m.Step(0, 1) // discard accumulated weight grads (lr=0)

	const eps = 1e-3
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := lossAt(x)
		x[i] = orig - eps
		down := lossAt(x)
		x[i] = orig
		numeric := (up - down) / (2 * eps)
		if diff := math.Abs(numeric - float64(analytic[i])); diff > 2e-2 {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, analytic[i], numeric)
		}
	}
}

func TestMLPLearnsXORishTask(t *testing.T) {
	// The MLP must fit a small nonlinear function — proof that Backward
	// and Step update weights in the right direction.
	rng := rand.New(rand.NewSource(4))
	m, _ := NewMLP(rng, 2, 16, 1)
	s := m.NewScratch()
	inputs := [][]float32{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []float32{0, 1, 1, 0}
	var first, last float32
	for epoch := 0; epoch < 3000; epoch++ {
		var total float32
		for i, x := range inputs {
			logit := m.Forward(x, s)
			loss, dLogit := BCELoss(logit, labels[i])
			total += loss
			m.Backward(dLogit, s)
		}
		m.Step(0.5, len(inputs))
		if epoch == 0 {
			first = total
		}
		last = total
	}
	if last > first/4 {
		t.Fatalf("XOR loss did not drop: first=%v last=%v", first, last)
	}
}

func TestBCELossExtremes(t *testing.T) {
	loss, d := BCELoss(100, 1)
	if loss > 0.01 || math.Abs(float64(d)) > 0.01 {
		t.Fatalf("confident correct: loss=%v d=%v", loss, d)
	}
	loss, d = BCELoss(-100, 1)
	if loss < 5 || d > -0.9 {
		t.Fatalf("confident wrong: loss=%v d=%v", loss, d)
	}
	if l0, _ := BCELoss(0, 0); math.Abs(float64(l0)-math.Ln2) > 1e-5 {
		t.Fatalf("BCE(0,0) = %v, want ln2", l0)
	}
}

func TestNewDLRMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := NewDLRM(rng, 0, 32, nil); err == nil {
		t.Fatal("0 features should error")
	}
	d, err := NewDLRM(rng, 26, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Features() != 26 || d.Dim() != 32 {
		t.Fatal("shape accessors wrong")
	}
	if d.MLP().Layers() != 4 {
		t.Fatalf("default top net layers = %d, want 4 (512-512-256-1)", d.MLP().Layers())
	}
}

func TestDLRMTrainBatchShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d, _ := NewDLRM(rng, 2, 4, []int{8})
	embs := make([][]float32, 2)
	grads := make([][]float32, 1)
	if _, err := d.TrainBatch(embs, []float32{1}, grads, nil, 0.1); err == nil {
		t.Fatal("mismatched grads should error")
	}
}

func TestDLRMLearnsEmbeddings(t *testing.T) {
	// End-to-end: train DLRM where labels depend on which embedding rows
	// are present; applying the returned row gradients must reduce loss.
	rng := rand.New(rand.NewSource(7))
	const features, dim, rows = 3, 8, 20
	d, err := NewDLRM(rng, features, dim, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	table := make([][]float32, rows)
	for i := range table {
		table[i] = make([]float32, dim)
		tensor.XavierInit(rng, table[i], rows, dim)
	}
	label := func(keys []int) float32 {
		s := 0
		for _, k := range keys {
			s += k
		}
		if s%2 == 0 {
			return 1
		}
		return 0
	}
	const batch = 16
	embs := make([][]float32, batch*features)
	grads := make([][]float32, batch*features)
	for i := range grads {
		grads[i] = make([]float32, dim)
	}
	labels := make([]float32, batch)
	keys := make([]int, batch*features)

	var first, last float32
	for step := 0; step < 400; step++ {
		for s := 0; s < batch; s++ {
			ks := make([]int, features)
			for f := 0; f < features; f++ {
				k := rng.Intn(rows)
				ks[f] = k
				keys[s*features+f] = k
				embs[s*features+f] = table[k]
			}
			labels[s] = label(ks)
		}
		loss, err := d.TrainBatch(embs, labels, grads, nil, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		// Apply embedding gradients (what the runtime's commit path does).
		for i, g := range grads {
			tensor.Axpy(-0.05, g, table[keys[i]])
		}
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if last > first*0.8 {
		t.Fatalf("DLRM loss did not drop: first=%v last=%v", first, last)
	}
}

// --- KG models --------------------------------------------------------

func kgVecs(rng *rand.Rand, dim int) (h, r, tt []float32) {
	h = make([]float32, dim)
	r = make([]float32, dim)
	tt = make([]float32, dim)
	tensor.UniformInit(rng, h, 0.5)
	tensor.UniformInit(rng, r, 0.5)
	tensor.UniformInit(rng, tt, 0.5)
	return
}

func TestKGModelByName(t *testing.T) {
	for _, name := range []string{"TransE", "DistMult", "ComplEx", "SimplE"} {
		m, err := KGModelByName(name)
		if err != nil || m.Name() != name {
			t.Fatalf("KGModelByName(%s): %v", name, err)
		}
	}
	if _, err := KGModelByName("RotatE"); err == nil {
		t.Fatal("unknown model should error")
	}
	if len(KGModels(12)) != 4 {
		t.Fatal("KGModels should return the 4 Exp #11 models")
	}
}

// TestKGScoreGradCheck verifies every model's analytic gradients against
// finite differences of the score.
func TestKGScoreGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const dim = 8
	for _, m := range KGModels(4) {
		t.Run(m.Name(), func(t *testing.T) {
			h, r, tt := kgVecs(rng, dim)
			gh := make([]float32, dim)
			gr := make([]float32, dim)
			gt := make([]float32, dim)
			s := m.ScoreGrad(h, r, tt, 1, gh, gr, gt)
			if got := m.Score(h, r, tt); math.Abs(float64(got-s)) > 1e-5 {
				t.Fatalf("Score (%v) and ScoreGrad (%v) disagree", got, s)
			}
			const eps = 1e-3
			check := func(vec, grad []float32, name string) {
				for i := range vec {
					orig := vec[i]
					vec[i] = orig + eps
					up := float64(m.Score(h, r, tt))
					vec[i] = orig - eps
					down := float64(m.Score(h, r, tt))
					vec[i] = orig
					numeric := (up - down) / (2 * eps)
					// TransE's L1 gradient is non-smooth at 0; tolerate it.
					if diff := math.Abs(numeric - float64(grad[i])); diff > 5e-2 {
						t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, i, grad[i], numeric)
					}
				}
			}
			check(h, gh, "h")
			check(r, gr, "r")
			check(tt, gt, "t")
		})
	}
}

func TestKGScoreGradNilBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h, r, tt := kgVecs(rng, 8)
	for _, m := range KGModels(4) {
		// Must not panic with nil gradient buffers.
		m.ScoreGrad(h, r, tt, 1, nil, nil, nil)
	}
}

func TestTrainTripleSeparatesPosFromNegs(t *testing.T) {
	// Training on a fixed positive against random negatives must raise the
	// positive score above the negatives — for every model.
	rng := rand.New(rand.NewSource(10))
	const dim, negK = 8, 4
	for _, m := range KGModels(4) {
		t.Run(m.Name(), func(t *testing.T) {
			h, r, tt := kgVecs(rng, dim)
			negs := make([][]float32, negK)
			gnegs := make([][]float32, negK)
			for i := range negs {
				negs[i] = make([]float32, dim)
				tensor.UniformInit(rng, negs[i], 0.5)
				gnegs[i] = make([]float32, dim)
			}
			gh := make([]float32, dim)
			gr := make([]float32, dim)
			gt := make([]float32, dim)
			var first, last float32
			for step := 0; step < 300; step++ {
				tensor.Zero(gh)
				tensor.Zero(gr)
				tensor.Zero(gt)
				for _, g := range gnegs {
					tensor.Zero(g)
				}
				loss := TrainTriple(m, h, r, tt, negs, gh, gr, gt, gnegs)
				tensor.Axpy(-0.05, gh, h)
				tensor.Axpy(-0.05, gr, r)
				tensor.Axpy(-0.05, gt, tt)
				for i := range negs {
					tensor.Axpy(-0.05, gnegs[i], negs[i])
				}
				if step == 0 {
					first = loss
				}
				last = loss
			}
			if last >= first {
				t.Fatalf("loss did not drop: first=%v last=%v", first, last)
			}
			pos := m.Score(h, r, tt)
			for i, n := range negs {
				if m.Score(h, r, n) >= pos {
					t.Fatalf("negative %d scores above positive after training", i)
				}
			}
		})
	}
}

func TestTransEGammaDefault(t *testing.T) {
	if NewTransE(0).Gamma != 12 {
		t.Fatal("default gamma should be 12")
	}
	if NewTransE(5).Gamma != 5 {
		t.Fatal("explicit gamma ignored")
	}
}

func TestSoftplus(t *testing.T) {
	if got := softplus(100); got != 100 {
		t.Fatalf("softplus(100) = %v", got)
	}
	if got := softplus(0); math.Abs(float64(got)-math.Ln2) > 1e-6 {
		t.Fatalf("softplus(0) = %v, want ln2", got)
	}
}

// --- GNN scorer ---------------------------------------------------------

func TestGNNScorerValidation(t *testing.T) {
	if _, err := NewGNNScorer(0, 2); err == nil {
		t.Fatal("dim=0 must error")
	}
	if _, err := NewGNNScorer(8, 0); err == nil {
		t.Fatal("fanout=0 must error")
	}
	g, err := NewGNNScorer(8, 3)
	if err != nil || g.Dim() != 8 || g.Fanout() != 3 {
		t.Fatalf("accessors wrong: %v", err)
	}
}

// TestGNNGradCheck verifies the analytic embedding gradients against
// finite differences of the loss.
func TestGNNGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const dim, fan = 6, 2
	sc, _ := NewGNNScorer(dim, fan)
	mk := func() []float32 {
		v := make([]float32, dim)
		tensor.UniformInit(rng, v, 0.5)
		return v
	}
	u, v := mk(), mk()
	uN := [][]float32{mk(), mk()}
	vN := [][]float32{mk(), mk()}
	lossAt := func() float64 {
		logit := sc.Score(u, uN, v, vN)
		loss, _ := BCELoss(logit, 1)
		return float64(loss)
	}
	gu, gv := make([]float32, dim), make([]float32, dim)
	guN := [][]float32{make([]float32, dim), make([]float32, dim)}
	gvN := [][]float32{make([]float32, dim), make([]float32, dim)}
	sc.TrainPair(1, u, uN, v, vN, gu, guN, gv, gvN)

	const eps = 1e-3
	check := func(vec, grad []float32, name string) {
		for i := range vec {
			orig := vec[i]
			vec[i] = orig + eps
			up := lossAt()
			vec[i] = orig - eps
			down := lossAt()
			vec[i] = orig
			numeric := (up - down) / (2 * eps)
			if diff := math.Abs(numeric - float64(grad[i])); diff > 2e-2 {
				t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, i, grad[i], numeric)
			}
		}
	}
	check(u, gu, "u")
	check(v, gv, "v")
	check(uN[0], guN[0], "uN0")
	check(vN[1], gvN[1], "vN1")
}

func TestGNNLearnsLinkStructure(t *testing.T) {
	// Two communities; edges exist within a community. Training must push
	// intra-community scores above cross-community ones.
	rng := rand.New(rand.NewSource(45))
	const dim, fan, nodes = 8, 2, 40
	sc, _ := NewGNNScorer(dim, fan)
	emb := make([][]float32, nodes)
	for i := range emb {
		emb[i] = make([]float32, dim)
		tensor.UniformInit(rng, emb[i], 0.3)
	}
	community := func(n int) int { return n % 2 }
	sampleNbr := func(n int) int { // neighbor in same community
		for {
			m := rng.Intn(nodes)
			if community(m) == community(n) && m != n {
				return m
			}
		}
	}
	nbrs := func(n int) ([][]float32, [][]float32, []int) {
		rows := make([][]float32, fan)
		grads := make([][]float32, fan)
		ids := make([]int, fan)
		for i := 0; i < fan; i++ {
			ids[i] = sampleNbr(n)
			rows[i] = emb[ids[i]]
			grads[i] = make([]float32, dim)
		}
		return rows, grads, ids
	}
	const lr = 0.3
	for step := 0; step < 1500; step++ {
		u := rng.Intn(nodes)
		v := sampleNbr(u)                          // positive: same community
		w := (u + 1 + 2*rng.Intn(nodes/2)) % nodes // negative: other community
		uN, guN, uIDs := nbrs(u)
		vN, gvN, vIDs := nbrs(v)
		wN, gwN, wIDs := nbrs(w)
		gu := make([]float32, dim)
		gv := make([]float32, dim)
		gw := make([]float32, dim)
		sc.TrainPair(1, emb[u], uN, emb[v], vN, gu, guN, gv, gvN)
		sc.TrainPair(0, emb[u], uN, emb[w], wN, gu, guN, gw, gwN)
		tensor.Axpy(-lr, gu, emb[u])
		tensor.Axpy(-lr, gv, emb[v])
		tensor.Axpy(-lr, gw, emb[w])
		for i := 0; i < fan; i++ {
			tensor.Axpy(-lr, guN[i], emb[uIDs[i]])
			tensor.Axpy(-lr, gvN[i], emb[vIDs[i]])
			tensor.Axpy(-lr, gwN[i], emb[wIDs[i]])
		}
	}
	// Evaluate separation.
	var intra, cross float32
	for i := 0; i < 200; i++ {
		u := rng.Intn(nodes)
		v := sampleNbr(u)
		w := (u + 1) % nodes
		uN, _, _ := nbrs(u)
		vN, _, _ := nbrs(v)
		wN, _, _ := nbrs(w)
		intra += sc.Score(emb[u], uN, emb[v], vN)
		cross += sc.Score(emb[u], uN, emb[w], wN)
	}
	if intra <= cross {
		t.Fatalf("intra-community score (%v) must beat cross (%v)", intra/200, cross/200)
	}
}
