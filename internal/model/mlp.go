// Package model implements the embedding models of the evaluation (§4.1):
// Facebook DLRM (embedding layer + fully connected DNN) for the
// recommendation workloads, and the TransE / DistMult / ComplEx / SimplE
// scoring functions for knowledge-graph embedding. Everything is real
// float32 training code — forward, backward, SGD — so the runtime's loss
// actually decreases; Exp #11 swaps these models to show Frugal's gains
// are orthogonal to the dense part.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"frugal/internal/tensor"
)

// MLP is a fully connected network with ReLU activations between layers
// and a linear final layer (the DLRM top MLP: 512-512-256-1 in §4.1).
type MLP struct {
	dims []int
	w    []*tensor.Matrix
	b    [][]float32
	// Accumulated gradients, applied by Step.
	gw []*tensor.Matrix
	gb [][]float32
}

// NewMLP builds an MLP with the given layer dimensions, e.g.
// NewMLP(rng, 32, 512, 512, 256, 1) for the paper's DLRM top net.
func NewMLP(rng *rand.Rand, dims ...int) (*MLP, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("model: MLP needs at least 2 dims, got %v", dims)
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("model: non-positive MLP dim in %v", dims)
		}
	}
	m := &MLP{dims: dims}
	for l := 0; l+1 < len(dims); l++ {
		in, out := dims[l], dims[l+1]
		w := tensor.NewMatrix(out, in)
		tensor.XavierInit(rng, w.Data, in, out)
		m.w = append(m.w, w)
		m.b = append(m.b, make([]float32, out))
		m.gw = append(m.gw, tensor.NewMatrix(out, in))
		m.gb = append(m.gb, make([]float32, out))
	}
	return m, nil
}

// Layers returns the number of weight layers.
func (m *MLP) Layers() int { return len(m.w) }

// InDim returns the input dimensionality.
func (m *MLP) InDim() int { return m.dims[0] }

// OutDim returns the output dimensionality.
func (m *MLP) OutDim() int { return m.dims[len(m.dims)-1] }

// Flops estimates the floating point operations of one forward+backward
// pass for a single sample (≈6 ops per weight: 2 forward, 4 backward).
func (m *MLP) Flops() float64 {
	var f float64
	for _, w := range m.w {
		f += float64(w.Rows*w.Cols) * 6
	}
	return f
}

// Scratch holds per-sample forward state reused across Backward.
type Scratch struct {
	acts  [][]float32 // activations per layer (acts[0] = input copy)
	masks [][]float32 // ReLU masks per hidden layer
	grads [][]float32 // gradient buffers per layer
}

// NewScratch allocates scratch buffers for the MLP.
func (m *MLP) NewScratch() *Scratch {
	s := &Scratch{}
	for _, d := range m.dims {
		s.acts = append(s.acts, make([]float32, d))
		s.grads = append(s.grads, make([]float32, d))
	}
	for l := 0; l+1 < len(m.dims); l++ {
		s.masks = append(s.masks, make([]float32, m.dims[l+1]))
	}
	return s
}

// Forward runs one sample through the net and returns the (pre-sigmoid)
// scalar logit of the final layer. For multi-output nets it returns the
// first output; use Output for the full vector.
func (m *MLP) Forward(x []float32, s *Scratch) float32 {
	if len(x) != m.dims[0] {
		panic(fmt.Sprintf("model: MLP input dim %d, want %d", len(x), m.dims[0]))
	}
	copy(s.acts[0], x)
	for l, w := range m.w {
		w.MulVec(s.acts[l], s.acts[l+1])
		tensor.Axpy(1, m.b[l], s.acts[l+1])
		if l+1 < len(m.w) { // hidden layers get ReLU; final layer is linear
			tensor.ReLU(s.acts[l+1], s.masks[l])
		}
	}
	return s.acts[len(s.acts)-1][0]
}

// Output returns the final-layer activation vector from the last Forward.
func (s *Scratch) Output() []float32 { return s.acts[len(s.acts)-1] }

// Backward back-propagates dLogit (∂loss/∂logit from the last Forward on
// this scratch), accumulates weight/bias gradients, and returns
// ∂loss/∂input (aliasing scratch storage — copy before the next call).
func (m *MLP) Backward(dLogit float32, s *Scratch) []float32 {
	last := len(s.grads) - 1
	tensor.Zero(s.grads[last])
	s.grads[last][0] = dLogit
	for l := len(m.w) - 1; l >= 0; l-- {
		if l+1 < len(m.w) {
			tensor.ReLUBackward(s.grads[l+1], s.masks[l])
		}
		m.gw[l].AddOuter(1, s.grads[l+1], s.acts[l])
		tensor.Axpy(1, s.grads[l+1], m.gb[l])
		m.w[l].MulVecT(s.grads[l+1], s.grads[l])
	}
	return s.grads[0]
}

// Step applies the accumulated gradients with learning rate lr (scaled by
// 1/batch) and clears them.
func (m *MLP) Step(lr float32, batch int) {
	if batch < 1 {
		batch = 1
	}
	scale := lr / float32(batch)
	for l := range m.w {
		tensor.Axpy(-scale, m.gw[l].Data, m.w[l].Data)
		tensor.Axpy(-scale, m.gb[l], m.b[l])
		tensor.Zero(m.gw[l].Data)
		tensor.Zero(m.gb[l])
	}
}

// BCELoss returns the binary cross-entropy of a logit against a {0,1}
// label, and ∂loss/∂logit.
func BCELoss(logit, label float32) (loss, dLogit float32) {
	p := tensor.SigmoidScalar(logit)
	const eps = 1e-7
	pc := float64(p)
	if pc < eps {
		pc = eps
	}
	if pc > 1-eps {
		pc = 1 - eps
	}
	if label > 0.5 {
		loss = float32(-math.Log(pc))
	} else {
		loss = float32(-math.Log(1 - pc))
	}
	return loss, p - label
}
