package frugal

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestStreamJobEndToEnd: an unpaced stream runs to its horizon with the
// delta-checkpoint log attached; after the graceful wind-down the log —
// base plus segments — reconstructs the final slab bit-identically.
func TestStreamJobEndToEnd(t *testing.T) {
	dir := t.TempDir() + "/log"
	sj, err := NewStreamJob(Config{NumGPUs: 2, Seed: 4, CheckConsistency: true}, StreamOptions{
		Batch: 32, KeySpace: 500, Dim: 8, Horizon: 40,
		LogDir: dir, SweepInterval: 5 * time.Millisecond, CompactEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sj.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 40 {
		t.Fatalf("steps = %d, want the 40-step horizon", res.Steps)
	}
	if sj.Emitted() != 40*32 {
		t.Fatalf("emitted = %d events, want %d", sj.Emitted(), 40*32)
	}
	ls := sj.LogStats()
	if ls.Segments < 1 || ls.Records < 1 {
		t.Fatalf("delta log never swept: %+v", ls)
	}
	rec, err := ReconstructLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := sj.Host().Save(&want); err != nil {
		t.Fatal(err)
	}
	if err := rec.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("log reconstruction differs from the final slab")
	}
}

// TestStreamJobCancelIsGraceful: canceling Run's context ends an
// open-loop stream cleanly — a normal Result, not ErrCanceled — with the
// log's final segment sealed behind the epilogue's drain.
func TestStreamJobCancelIsGraceful(t *testing.T) {
	dir := t.TempDir() + "/log"
	sj, err := NewStreamJob(Config{NumGPUs: 2, Seed: 9, CheckConsistency: true}, StreamOptions{
		Rate: 5000, Batch: 32, KeySpace: 300, Dim: 4, Horizon: 1 << 12,
		LogDir: dir, SweepInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	res, err := sj.Run(ctx)
	if err != nil {
		t.Fatalf("graceful cancellation returned %v", err)
	}
	if res.Steps < 1 {
		t.Fatal("no steps before cancellation")
	}
	rec, err := ReconstructLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := sj.Host().Save(&want); err != nil {
		t.Fatal(err)
	}
	if err := rec.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("log reconstruction differs from the slab after cancellation")
	}
}

func TestNewStreamJobValidation(t *testing.T) {
	if _, err := NewStreamJob(Config{Engine: EngineDirect}, StreamOptions{}); err == nil {
		t.Fatal("streaming on EngineDirect accepted")
	}
	if _, err := NewStreamJob(Config{}, StreamOptions{Distribution: "bogus"}); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

// TestStreamingWorkload: the Workload surface runs the same source
// through New, and refuses the delta log (whose writer lifecycle only
// NewStreamJob manages).
func TestStreamingWorkload(t *testing.T) {
	w := Streaming{Options: StreamOptions{Rate: 1000, Batch: 16, KeySpace: 100, Dim: 4, Horizon: 10}}
	if w.Kind() != "streaming" || w.Name() == "" {
		t.Fatalf("kind %q name %q", w.Kind(), w.Name())
	}
	job, err := New(Config{NumGPUs: 1, CheckConsistency: true}, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 10 {
		t.Fatalf("steps = %d, want 10", res.Steps)
	}
	if _, err := New(Config{}, Streaming{Options: StreamOptions{LogDir: t.TempDir()}}); err == nil {
		t.Fatal("Workload surface accepted a delta log")
	}
}

// TestRestoreCheckpointErrors: the error paths of RestoreCheckpoint at
// the public API — wrong shape, torn stream, foreign bytes, future
// format — all fail loudly instead of half-loading the slab.
func TestRestoreCheckpointErrors(t *testing.T) {
	mk := func(dim int) *TrainingJob {
		job, err := New(Config{NumGPUs: 1, Seed: 2},
			Microbenchmark{Options: MicroOptions{KeySpace: 200, Dim: dim, Batch: 16, Steps: 5}})
		if err != nil {
			t.Fatal(err)
		}
		return job
	}
	var buf bytes.Buffer
	if err := mk(16).SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if err := mk(32).RestoreCheckpoint(bytes.NewReader(good)); err == nil ||
		!strings.Contains(err.Error(), "shape") {
		t.Fatalf("shape mismatch: %v", err)
	}
	if err := mk(16).RestoreCheckpoint(bytes.NewReader(good[:len(good)-9])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	if err := mk(16).RestoreCheckpoint(bytes.NewReader(good[:7])); err == nil {
		t.Fatal("torn header accepted")
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xFF
	if err := mk(16).RestoreCheckpoint(bytes.NewReader(badMagic)); err == nil ||
		!strings.Contains(err.Error(), "not a frugal checkpoint") {
		t.Fatalf("bad magic: %v", err)
	}

	badVer := append([]byte(nil), good...)
	badVer[4] = 99
	if err := mk(16).RestoreCheckpoint(bytes.NewReader(badVer)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: %v", err)
	}

	// And the happy path still round-trips after all that.
	if err := mk(16).RestoreCheckpoint(bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
}
