// Serving: attach a query engine to a live training job and read
// embeddings under bounded staleness while the P²F runtime is still
// flushing updates — then save a checkpoint and serve the frozen slab.
//
// The host slab always holds the freshest full copy of the parameters
// (§3 of the paper); the serving layer turns that property into an
// online API with three consistency levels:
//
//	stale       read host memory as-is, zero coordination
//	bounded(k)  admit at most k gate steps of flush lag, refresh otherwise
//	fresh       force-flush the row's pending updates before reading
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"frugal"
)

func main() {
	cfg := frugal.Config{
		Engine:     frugal.EngineFrugal,
		NumGPUs:    2,
		CacheRatio: 0.25,
		Seed:       7,
	}
	job, err := frugal.New(cfg, frugal.Microbenchmark{
		Options: frugal.MicroOptions{KeySpace: 50_000, Dim: 32, Batch: 256, Steps: 400},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Attach the server before the run starts; queries and training share
	// the slab safely at any point in the job's lifetime.
	srv, err := job.Serve(frugal.ServeOptions{Level: frugal.ServeBounded(2)})
	if err != nil {
		log.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := job.Run()
		done <- err
	}()

	// Query while training runs, through the unified Query entrypoint:
	// one request shape for lookups (Key/Dst) and similarity searches
	// (Vector/K). Each lookup reports the row's version (updates applied
	// to host memory), the gate watermark it was judged against, and its
	// flush lag in gate steps.
	ctx := context.Background()
	row := make([]float32, srv.Dim())
	for i := 0; i < 5; i++ {
		resp, err := srv.Query(ctx, frugal.ServeRequest{Key: 4, Dst: row, UseDefault: true})
		if err != nil {
			log.Fatal(err)
		}
		meta := resp.Meta
		fmt.Printf("live lookup: version %d, watermark %d, staleness %d, refreshed %v\n",
			meta.Version, meta.Watermark, meta.Staleness, meta.Refreshed)
		time.Sleep(2 * time.Millisecond)
	}
	top, err := srv.Query(ctx, frugal.ServeRequest{Vector: row, K: 3, Level: frugal.ServeStale()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live top-3 by dot product: ")
	for _, c := range top.Results {
		fmt.Printf("key %d (%.3f)  ", c.Key, c.Score)
	}
	fmt.Println()

	if err := <-done; err != nil {
		log.Fatal(err)
	}

	// A fresh read after the run sees every update the trainers committed.
	// Scan for a trafficked row first — under Zipf skew most of the 50k
	// keys were never touched.
	hot, hotMeta := uint64(0), frugal.ServeRowMeta{}
	for key := uint64(0); key < uint64(srv.Rows()); key++ {
		resp, err := srv.Query(ctx, frugal.ServeRequest{Key: key, Dst: row, Level: frugal.ServeFresh()})
		if err != nil {
			log.Fatal(err)
		}
		if resp.Meta.Version > hotMeta.Version {
			hot, hotMeta = key, resp.Meta
		}
		if key > 2000 && hotMeta.Version > 0 {
			break
		}
	}
	fmt.Printf("post-run fresh lookup: key %d at version %d, watermark %d\n",
		hot, hotMeta.Version, hotMeta.Watermark)

	// Checkpoint the slab and serve it statically — what frugal-serve
	// does from the command line.
	var ckpt bytes.Buffer
	if err := job.SaveCheckpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	// The frozen slab is also where a sublinear top-K index pays off:
	// IndexIVF partitions the rows by k-means at construction and scans
	// only the NProbe nearest partitions per query.
	frozen, err := frugal.NewServerFromCheckpoint(&ckpt, frugal.ServeOptions{Index: frugal.IndexIVF})
	if err != nil {
		log.Fatal(err)
	}
	ivfTop, err := frozen.Query(ctx, frugal.ServeRequest{Vector: row, K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint top-3 via %s index: ", ivfTop.Index)
	for _, c := range ivfTop.Results {
		fmt.Printf("key %d (%.3f)  ", c.Key, c.Score)
	}
	fmt.Println()
	rep, err := frozen.RunLoadGen(frugal.LoadGenOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint loadgen: %.0f queries/s, lookup mean %v, top-K mean %v\n",
		rep.QPS, rep.LookupLatency.Mean(), rep.TopKLatency.Mean())
}
