// Knowledge-graph example: train all four graph-embedding models of the
// paper's Exp #11 (TransE, DistMult, ComplEx, SimplE) on a synthetic
// FB15k-like triple stream with the Frugal engine, using the DGL-KE
// negative-sampling objective.
package main

import (
	"fmt"
	"log"

	"frugal"
)

func main() {
	fmt.Println("Graph embedding on synthetic FB15k — 2 GPUs, 500 steps, dim 16")
	fmt.Printf("%-10s %12s %12s %12s\n", "model", "first loss", "last loss", "samples/s")

	for _, m := range []string{"TransE", "DistMult", "ComplEx", "SimplE"} {
		lr := float32(0.5)
		if m == "SimplE" {
			// SimplE's role-split halves see half the interactions per
			// dimension; give it a proportionally larger step.
			lr = 1.0
		}
		job, err := frugal.New(frugal.Config{
			Engine:           frugal.EngineFrugal,
			NumGPUs:          2,
			CacheRatio:       0.05,
			LR:               lr,
			CheckConsistency: true,
			Seed:             11,
		}, frugal.KnowledgeGraph{Dataset: frugal.DatasetFB15k, Options: frugal.KGOptions{
			Model:     m,
			Scale:     100, // ~6k entities
			Batch:     64,
			NegSample: 32,
			Steps:     500,
			Dim:       16, // dim 400 in the paper; 16 keeps the example fast
		}})
		if err != nil {
			log.Fatal(err)
		}
		res, err := job.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.3f %12.3f %12.0f\n",
			m, res.Losses[0], res.Losses[len(res.Losses)-1], res.SamplesPerSec)
	}

	fmt.Println("\nEvery model trains through the same embedding runtime: the")
	fmt.Println("scoring function only changes the gradients, which is why the")
	fmt.Println("paper's Frugal gains are insensitive to the model (Fig 18a).")
}
