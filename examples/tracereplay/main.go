// Trace replay: record a key trace in the frugal-datagen format, then
// replay the identical trace through two different engines and show they
// reach the same parameters — the synchronous-consistency guarantee made
// tangible. The same mechanism lets recorded production traces drive the
// runtime (frugal-train -replay).
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"frugal"
)

func main() {
	// 1. "Record" a trace (here: generated in-process in the same format
	// frugal-datagen -trace emits — one batch per line).
	var trace strings.Builder
	state := uint64(99)
	next := func() uint64 { // xorshift keys over [0, 4000)
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state % 4000
	}
	const steps, batch = 80, 96
	for s := 0; s < steps; s++ {
		for i := 0; i < batch; i++ {
			if i > 0 {
				trace.WriteByte(' ')
			}
			fmt.Fprintf(&trace, "%d", next())
		}
		trace.WriteByte('\n')
	}

	// 2. Replay through two engines.
	run := func(engine frugal.Engine) *frugal.TrainingJob {
		job, err := frugal.New(frugal.Config{
			Engine: engine, NumGPUs: 4, CheckConsistency: true, Seed: 3,
		}, frugal.Replay{Source: strings.NewReader(trace.String()), Options: frugal.ReplayOptions{Dim: 8}})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := job.Run(); err != nil {
			log.Fatal(err)
		}
		return job
	}
	frugalJob := run(frugal.EngineFrugal)
	directJob := run(frugal.EngineDirect)

	// 3. Compare the resulting embedding tables.
	var maxDiff float64
	for k := uint64(0); k < 4000; k++ {
		a, b := frugalJob.HostRow(k), directJob.HostRow(k)
		for d := range a {
			if diff := math.Abs(float64(a[d] - b[d])); diff > maxDiff {
				maxDiff = diff
			}
		}
	}
	fmt.Printf("replayed %d steps × %d keys through frugal and direct engines\n", steps, batch)
	fmt.Printf("max parameter difference between engines: %.2e\n", maxDiff)
	fmt.Println("(synchronous consistency: the proactive-flush runtime and the")
	fmt.Println(" plain host-memory runtime compute the same model)")
}
