// Quickstart: train a small DLRM on a synthetic Avazu-like dataset with
// the Frugal engine (4 simulated GPUs), and watch the loss fall while the
// P²F runtime flushes updates in the background.
package main

import (
	"fmt"
	"log"

	"frugal"
)

func main() {
	cfg := frugal.Config{
		Engine:           frugal.EngineFrugal,
		NumGPUs:          4,
		CacheRatio:       0.05,
		CheckConsistency: true, // assert invariant (2) of the paper every step
		Seed:             42,
	}
	job, err := frugal.New(cfg, frugal.Recommendation{
		Dataset: frugal.DatasetAvazu,
		Options: frugal.RECOptions{
			Scale:  1_000_000, // shrink the 49M-ID space for a laptop run
			Batch:  64,
			Steps:  120,
			Hidden: []int{64, 32}, // small top net; drop for the paper's 512-512-256
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Frugal quickstart — DLRM on synthetic Avazu")
	for s := 0; s < len(res.Losses); s += 20 {
		fmt.Printf("  step %3d  loss %.4f\n", s, res.Losses[s])
	}
	fmt.Printf("  step %3d  loss %.4f\n", len(res.Losses)-1, res.Losses[len(res.Losses)-1])
	fmt.Printf("\nthroughput %.0f samples/s, gate stall %v\n", res.SamplesPerSec, res.StallTime)
	fmt.Printf("flushed %d updates (%d g-entries deferred to idle time)\n", res.Flushed, res.Deferred)
	fmt.Printf("cache hit ratio %.1f%%\n", 100*res.CacheStats.HitRatio())
}
