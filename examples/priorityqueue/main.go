// Priority-queue walkthrough: reproduces the Fig 6 example of the paper
// step by step on the real P²F machinery (two-level priority queue,
// g-entries, consistency gate), printing what the controller sees. This
// example reaches into the internal packages on purpose — it is a guided
// tour of the runtime, not API advice.
package main

import (
	"fmt"
	"sync"

	"frugal/internal/p2f"
	"frugal/internal/pq"
)

// The Fig 6 trace with lookahead L=2: step 0 reads {k2, k3, k1},
// step 1 reads {k2}, step 2 reads {k1}. k3's update from step 0 is never
// read again, so P²F defers it while k2 and k1 flush urgently.
const (
	k1 = 1
	k2 = 2
	k3 = 3
)

type source struct {
	mu      sync.Mutex
	batches [][]uint64
}

func (s *source) Next() ([]uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.batches) == 0 {
		return nil, false
	}
	b := s.batches[0]
	s.batches = s.batches[1:]
	return b, true
}

func main() {
	flushed := make(chan string, 16)
	ctrl, err := p2f.NewController(p2f.Options{
		MaxStep:      3,
		Lookahead:    2,
		FlushThreads: 1,
		Source:       &source{batches: [][]uint64{{k2, k3, k1}, {k2}, {k1}}},
		Sink: p2f.FlushSinkFunc(func(key uint64, updates []pq.Update) {
			flushed <- fmt.Sprintf("    flusher: wrote k%d to host memory (%d pending update(s))", key, len(updates))
		}),
	})
	if err != nil {
		panic(err)
	}
	ctrl.Start()
	defer ctrl.Stop()

	fmt.Println("P²F walkthrough of Fig 6 (lookahead L=2)")
	for {
		b, ok := ctrl.NextBatch()
		if !ok {
			break
		}
		fmt.Printf("step %d: batch keys %v\n", b.Step, b.Keys)
		fmt.Printf("  gate: waiting until PQ.top() > %d …\n", b.Step)
		stall := ctrl.WaitForStep(b.Step)
		drainLog(flushed)
		fmt.Printf("  gate open after %v; invariant (2) check: %v\n",
			stall.Round(1000), errString(ctrl.CheckInvariant(b.Step, b.Keys)))

		// "Train": produce one unit gradient per key read this step.
		upd := make([]p2f.KeyDelta, len(b.Keys))
		for i, k := range b.Keys {
			upd[i] = p2f.KeyDelta{Key: k, Delta: []float32{1}}
		}
		ctrl.CommitStep(b.Step, upd)
		fmt.Printf("  committed %d updates; PQ.top() is now %s\n", len(upd), top(ctrl))
	}

	fmt.Println("end of training: draining deferred updates (the k3 case)…")
	ctrl.DrainAll()
	drainLog(flushed)
	st := ctrl.Stats()
	fmt.Printf("done: %d updates flushed, %d g-entries deferred to ∞ priority, %d urgent\n",
		st.FlushedUpdates, st.DeferredFlushes, st.UrgentFlushes)
}

func drainLog(ch chan string) {
	for {
		select {
		case line := <-ch:
			fmt.Println(line)
		default:
			return
		}
	}
}

func top(c *p2f.Controller) string {
	if t := c.Queue().Top(); t != pq.Inf {
		return fmt.Sprint(t)
	}
	return "∞"
}

func errString(err error) string {
	if err == nil {
		return "OK"
	}
	return err.Error()
}
