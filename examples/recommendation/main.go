// Recommendation example: train DLRM on a synthetic Criteo-like dataset
// with all three engines and compare their behaviour — the functional
// counterpart of the paper's Exp #7. All engines are synchronous-
// consistent, so they converge to (numerically almost) the same model;
// what differs is how updates travel to host memory.
package main

import (
	"fmt"
	"log"

	"frugal"
)

func main() {
	fmt.Println("DLRM on synthetic Criteo — engine comparison (2 GPUs, 150 steps)")
	fmt.Printf("%-12s %10s %12s %12s %10s %10s\n",
		"engine", "last loss", "samples/s", "gate stall", "flushed", "cache hit")

	for _, engine := range []frugal.Engine{frugal.EngineDirect, frugal.EngineFrugalSync, frugal.EngineFrugal} {
		cfg := frugal.Config{
			Engine:           engine,
			NumGPUs:          2,
			CacheRatio:       0.05,
			CheckConsistency: true,
			Seed:             7,
		}
		job, err := frugal.New(cfg, frugal.Recommendation{Dataset: frugal.DatasetCriteo, Options: frugal.RECOptions{
			Scale: 1_000_000,
			Batch: 64,
			Steps: 150,
			// A small top net keeps the example quick; drop Hidden for the
			// paper's 512-512-256-1.
			Hidden: []int{64, 32},
		}})
		if err != nil {
			log.Fatal(err)
		}
		res, err := job.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.4f %12.0f %12v %10d %9.1f%%\n",
			engine, res.Losses[len(res.Losses)-1], res.SamplesPerSec,
			res.StallTime.Round(1000), res.Flushed, 100*res.CacheStats.HitRatio())
	}

	fmt.Println("\nAll engines see identical parameter values at every step")
	fmt.Println("(synchronous consistency), so the loss columns match closely;")
	fmt.Println("only the Frugal engine flushes updates through the P²F queue.")
}
